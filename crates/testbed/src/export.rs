//! Figure-ready export of the orchestrator's metrics store.
//!
//! Everything here reads *orchestrator-side* state: the numbers were
//! sampled by each gateway's `metricsd`, serialized, and pushed over the
//! simulated backhaul. Exports are deterministic — the store and every
//! snapshot are `BTreeMap`-backed, and `serde_json`'s map preserves key
//! order — so two same-seed runs produce byte-identical JSON.

use magma_orc8r::Orc8rState;
use serde_json::{json, Map, Value};
use std::fmt::Write as _;

/// The attach span's stage taxonomy, in procedure order, plus the total.
/// Each maps to the merged histogram `mme.attach.<stage>_s`.
pub const ATTACH_STAGES: [&str; 5] =
    ["s1ap", "nas_auth", "session_setup", "bearer_install", "total"];

fn stage_histogram_name(stage: &str) -> String {
    format!("mme.attach.{stage}_s")
}

/// Export the orchestrator's metrics-store view as JSON: per-gateway
/// health (CPU%, sessions, push bookkeeping) and fleet-merged attach
/// stage quantiles.
pub fn orc8r_metrics_json(st: &Orc8rState) -> Value {
    let mut gateways = Map::new();
    for (id, gm) in st.metrics_store.gateways() {
        let g = &gm.latest.gauges;
        let c = &gm.latest.counters;
        gateways.insert(
            id.to_string(),
            json!({
                "cpu_percent": g.get("cpu.percent").copied().unwrap_or(0.0),
                "sessions": g.get("sessiond.sessions").copied().unwrap_or(0.0),
                "attach_accept": c.get("mme.attach_accept").copied().unwrap_or(0.0),
                "attach_reject": c.get("mme.attach_reject").copied().unwrap_or(0.0),
                "pushes": gm.pushes,
                "last_seq": gm.last_seq,
                "last_at_us": gm.last_at.map(|t| t.0).unwrap_or(0),
            }),
        );
    }

    let mut stages = Map::new();
    for stage in ATTACH_STAGES {
        let name = stage_histogram_name(stage);
        let Some(h) = st.metrics_store.merged_histogram(&name) else {
            continue;
        };
        if h.is_empty() {
            continue;
        }
        stages.insert(
            stage.to_string(),
            json!({
                "count": h.count,
                "mean_s": h.mean(),
                "p50_s": h.quantile(0.5),
                "p95_s": h.quantile(0.95),
                "p99_s": h.quantile(0.99),
            }),
        );
    }

    json!({
        "gateways": Value::Object(gateways),
        "attach_stages": Value::Object(stages),
    })
}

/// Render the same queries as a console table (what an operator's NMS
/// would display).
pub fn render_orc8r_metrics(st: &Orc8rState) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== orc8r metrics (from metricsd pushes) ==");
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>10} {:>8} {:>8}",
        "gateway", "cpu%", "sessions", "pushes", "last_seq"
    );
    for (id, gm) in st.metrics_store.gateways() {
        let g = &gm.latest.gauges;
        let _ = writeln!(
            out,
            "{:<10} {:>8.1} {:>10.0} {:>8} {:>8}",
            id,
            g.get("cpu.percent").copied().unwrap_or(0.0),
            g.get("sessiond.sessions").copied().unwrap_or(0.0),
            gm.pushes,
            gm.last_seq,
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>10} {:>10} {:>10}",
        "attach stage", "count", "p50", "p95", "p99"
    );
    for stage in ATTACH_STAGES {
        let name = stage_histogram_name(stage);
        let Some(h) = st.metrics_store.merged_histogram(&name) else {
            continue;
        };
        if h.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>9.1}ms {:>9.1}ms {:>9.1}ms",
            stage,
            h.count,
            h.quantile(0.5) * 1e3,
            h.quantile(0.95) * 1e3,
            h.quantile(0.99) * 1e3,
        );
    }
    out
}
