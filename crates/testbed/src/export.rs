//! Figure-ready export of the orchestrator's metrics store.
//!
//! Everything here reads *orchestrator-side* state: the numbers were
//! sampled by each gateway's `metricsd`, serialized, and pushed over the
//! simulated backhaul. Exports are deterministic — the store and every
//! snapshot are `BTreeMap`-backed, and `serde_json`'s map preserves key
//! order — so two same-seed runs produce byte-identical JSON.

use magma_orc8r::{Orc8rState, WINDOW_1M};
use serde_json::{json, Map, Value};
use std::fmt::Write as _;

/// The attach span's stage taxonomy, in procedure order, plus the total.
/// Each maps to the merged histogram `mme.attach.<stage>_s`.
pub const ATTACH_STAGES: [&str; 5] =
    ["s1ap", "nas_auth", "session_setup", "bearer_install", "total"];

fn stage_histogram_name(stage: &str) -> String {
    format!("mme.attach.{stage}_s")
}

/// Export the orchestrator's metrics-store view as JSON: per-gateway
/// health (CPU%, sessions, push bookkeeping) and fleet-merged attach
/// stage quantiles.
pub fn orc8r_metrics_json(st: &Orc8rState) -> Value {
    let mut gateways = Map::new();
    for (id, gm) in st.metrics_store.gateways() {
        let g = &gm.latest.gauges;
        let c = &gm.latest.counters;
        gateways.insert(
            id.to_string(),
            json!({
                "cpu_percent": g.get("cpu.percent").copied().unwrap_or(0.0),
                "sessions": g.get("sessiond.sessions").copied().unwrap_or(0.0),
                "attach_accept": c.get("mme.attach_accept").copied().unwrap_or(0.0),
                "attach_reject": c.get("mme.attach_reject").copied().unwrap_or(0.0),
                "pushes": gm.pushes,
                "last_seq": gm.last_seq,
                "last_at_us": gm.last_at.map(|t| t.0).unwrap_or(0),
            }),
        );
    }

    let mut stages = Map::new();
    for stage in ATTACH_STAGES {
        let name = stage_histogram_name(stage);
        let Some(h) = st.metrics_store.merged_histogram(&name) else {
            continue;
        };
        if h.is_empty() {
            continue;
        }
        stages.insert(
            stage.to_string(),
            json!({
                "count": h.count,
                "mean_s": h.mean(),
                "p50_s": h.quantile(0.5),
                "p95_s": h.quantile(0.95),
                "p99_s": h.quantile(0.99),
            }),
        );
    }

    json!({
        "gateways": Value::Object(gateways),
        "attach_stages": Value::Object(stages),
    })
}

/// Export the structured-event log shipped by every gateway's metricsd,
/// ordered by gateway then event id (ingest order).
pub fn orc8r_events_json(st: &Orc8rState) -> Value {
    let mut gateways = Map::new();
    for (id, gm) in st.metrics_store.gateways() {
        let events: Vec<Value> = gm
            .events
            .iter()
            .map(|e| {
                json!({
                    "id": e.id,
                    "at_us": e.at.0,
                    "kind": e.kind,
                    "severity": e.severity,
                    "fields": e.fields,
                })
            })
            .collect();
        gateways.insert(
            id.to_string(),
            json!({
                "events": events,
                "dropped": gm.events_dropped,
            }),
        );
    }
    json!({ "gateways": Value::Object(gateways) })
}

/// Export the alert firing history: every episode ever raised, with its
/// resolution time when the episode has closed.
pub fn orc8r_alerts_json(st: &Orc8rState) -> Value {
    let alerts: Vec<Value> = st
        .alerts
        .iter()
        .map(|a| {
            json!({
                "rule": a.rule,
                "gateway": a.gateway,
                "severity": a.severity,
                "what": a.what,
                "at_us": a.at.0,
                "resolved_at_us": a.resolved_at.map(|t| t.0),
            })
        })
        .collect();
    json!({ "alerts": alerts })
}

/// The full northbound telemetry export: latest metrics, windowed
/// queries over the rolling history, the event log, and the alert
/// firing history — everything the acceptance scenario inspects, in one
/// deterministic document.
pub fn orc8r_telemetry_json(st: &Orc8rState) -> Value {
    let mut windows = Map::new();
    for (id, gm) in st.metrics_store.gateways() {
        let history: Vec<Value> = gm
            .history
            .iter()
            .map(|s| {
                json!({
                    "at_us": s.at.0,
                    "cpu_percent": s.gauges.get("cpu.percent").copied().unwrap_or(0.0),
                })
            })
            .collect();
        windows.insert(
            id.to_string(),
            json!({
                "history": history,
                "attach_accept_rate_1m":
                    st.metrics_store.rate(id, "mme.attach_accept", WINDOW_1M),
                "cpu_avg_1m": st.metrics_store.avg_over(id, "cpu.percent", WINDOW_1M),
                "cpu_max_1m": st.metrics_store.max_over(id, "cpu.percent", WINDOW_1M),
            }),
        );
    }
    json!({
        "metrics": orc8r_metrics_json(st),
        "windows": Value::Object(windows),
        "events": orc8r_events_json(st),
        "alerts": orc8r_alerts_json(st),
    })
}

/// Render the same queries as a console table (what an operator's NMS
/// would display).
pub fn render_orc8r_metrics(st: &Orc8rState) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== orc8r metrics (from metricsd pushes) ==");
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>10} {:>8} {:>8}",
        "gateway", "cpu%", "sessions", "pushes", "last_seq"
    );
    for (id, gm) in st.metrics_store.gateways() {
        let g = &gm.latest.gauges;
        let _ = writeln!(
            out,
            "{:<10} {:>8.1} {:>10.0} {:>8} {:>8}",
            id,
            g.get("cpu.percent").copied().unwrap_or(0.0),
            g.get("sessiond.sessions").copied().unwrap_or(0.0),
            gm.pushes,
            gm.last_seq,
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>10} {:>10} {:>10}",
        "attach stage", "count", "p50", "p95", "p99"
    );
    for stage in ATTACH_STAGES {
        let name = stage_histogram_name(stage);
        let Some(h) = st.metrics_store.merged_histogram(&name) else {
            continue;
        };
        if h.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>9.1}ms {:>9.1}ms {:>9.1}ms",
            stage,
            h.count,
            h.quantile(0.5) * 1e3,
            h.quantile(0.95) * 1e3,
            h.quantile(0.99) * 1e3,
        );
    }
    out
}

/// Render the orchestrator's event log as a console table.
pub fn render_orc8r_events(st: &Orc8rState) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== orc8r event log (from metricsd pushes) ==");
    let _ = writeln!(
        out,
        "{:<12} {:<10} {:<20} {:<9} fields",
        "t", "gateway", "kind", "severity"
    );
    for (id, gm) in st.metrics_store.gateways() {
        for e in &gm.events {
            let fields: Vec<String> =
                e.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let _ = writeln!(
                out,
                "{:<12} {:<10} {:<20} {:<9} {}",
                format!("{:.1}s", e.at.0 as f64 / 1e6),
                id,
                e.kind,
                format!("{:?}", e.severity).to_lowercase(),
                fields.join(" "),
            );
        }
    }
    out
}

/// Render the alert firing history as a console table.
pub fn render_orc8r_alerts(st: &Orc8rState) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== orc8r alerts ==");
    let _ = writeln!(
        out,
        "{:<16} {:<10} {:<9} {:>10} {:>12}  what",
        "rule", "gateway", "severity", "fired", "resolved"
    );
    for a in &st.alerts {
        let resolved = a
            .resolved_at
            .map(|t| format!("{:.1}s", t.0 as f64 / 1e6))
            .unwrap_or_else(|| "firing".to_string());
        let _ = writeln!(
            out,
            "{:<16} {:<10} {:<9} {:>10} {:>12}  {}",
            a.rule,
            a.gateway,
            format!("{:?}", a.severity).to_lowercase(),
            format!("{:.1}s", a.at.0 as f64 / 1e6),
            resolved,
            a.what,
        );
    }
    out
}
