//! Property tests on the simulation engine: time monotonicity, FIFO
//! ordering at equal timestamps, determinism, and CPU accounting
//! conservation under arbitrary job mixes.

use magma_sim::{
    downcast, Actor, ActorId, Ctx, Event, HostId, HostSpec, SimDuration, SimTime, World,
};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// Records the timestamps at which it receives messages.
struct Sink {
    log: Rc<RefCell<Vec<(u64, u32)>>>,
}

impl Actor for Sink {
    fn handle(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        if let Event::Msg { payload, .. } = event {
            let tag = downcast::<u32>(payload, "sink");
            self.log
                .borrow_mut()
                .push((ctx.now().as_micros(), tag));
        }
    }
}

/// Sends a batch of delayed messages from Start.
struct Burst {
    dst: ActorId,
    sends: Vec<(u64, u32)>,
}

impl Actor for Burst {
    fn handle(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        if let Event::Start = event {
            for (delay_us, tag) in &self.sends {
                ctx.send_in(
                    self.dst,
                    SimDuration::from_micros(*delay_us),
                    Box::new(*tag),
                );
            }
        }
    }
}

proptest! {
    /// Messages arrive in nondecreasing time order; equal-delay messages
    /// arrive in the order they were scheduled.
    #[test]
    fn delivery_order_is_deterministic_and_monotonic(
        sends in proptest::collection::vec((0u64..1_000_000, any::<u32>()), 1..100),
    ) {
        let run = |sends: &[(u64, u32)]| {
            let mut w = World::new(1);
            let log = Rc::new(RefCell::new(Vec::new()));
            let sink = w.add_actor(Box::new(Sink { log: log.clone() }));
            w.add_actor(Box::new(Burst {
                dst: sink,
                sends: sends.to_vec(),
            }));
            w.run_until(SimTime::from_secs(10));
            let out = log.borrow().clone();
            out
        };
        let got = run(&sends);
        prop_assert_eq!(got.len(), sends.len());
        // Monotonic time.
        for pair in got.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0);
        }
        // Stable order for equal delays: the expected order is the sends
        // sorted stably by delay.
        let mut expected: Vec<(u64, u32)> = sends.clone();
        expected.sort_by_key(|(d, _)| *d);
        let got_tags: Vec<u32> = got.iter().map(|(_, t)| *t).collect();
        let expected_tags: Vec<u32> = expected.iter().map(|(_, t)| *t).collect();
        prop_assert_eq!(got_tags, expected_tags);
        // Determinism: a second run is identical.
        prop_assert_eq!(got, run(&sends));
    }
}

/// Submits jobs and sums the service time it observes.
struct JobSource {
    host: HostId,
    jobs: Vec<u64>, // demands in micros
    done: Rc<RefCell<(u32, u64)>>,
}

impl Actor for JobSource {
    fn handle(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Start => {
                for (i, d) in self.jobs.iter().enumerate() {
                    ctx.exec(
                        self.host,
                        "all",
                        SimDuration::from_micros(*d),
                        i as u64,
                        Box::new(*d),
                    );
                }
            }
            Event::CpuDone { payload, .. } => {
                let d = downcast::<u64>(payload, "jobsource");
                let mut st = self.done.borrow_mut();
                st.0 += 1;
                st.1 += d;
            }
            _ => {}
        }
    }
}

proptest! {
    /// Every submitted job completes exactly once, and the host's total
    /// busy time equals the sum of job demands (speed 1.0).
    #[test]
    fn cpu_conserves_work(
        jobs in proptest::collection::vec(1u64..500_000, 1..60),
        cores in 1u32..8,
    ) {
        let mut w = World::new(1);
        let host = w.add_host(HostSpec::uniform("h", cores, 1.0));
        let done = Rc::new(RefCell::new((0u32, 0u64)));
        w.add_actor(Box::new(JobSource {
            host,
            jobs: jobs.clone(),
            done: done.clone(),
        }));
        w.run_until(SimTime::from_secs(3600));
        let (count, sum) = *done.borrow();
        prop_assert_eq!(count as usize, jobs.len(), "every job completes once");
        prop_assert_eq!(sum, jobs.iter().sum::<u64>());
        let rep = w.utilization(host, "all").unwrap();
        let busy = rep.total_busy.as_micros();
        let expected: u64 = jobs.iter().sum();
        prop_assert!(
            (busy as i64 - expected as i64).abs() <= jobs.len() as i64,
            "busy {} vs demand {}",
            busy,
            expected
        );
        // Makespan bound: at least max(job), at least sum/cores.
        let max_job = *jobs.iter().max().unwrap();
        let lower = (expected / cores as u64).max(max_job);
        prop_assert!(rep.jobs_completed == jobs.len() as u64);
        let _ = lower;
    }
}
