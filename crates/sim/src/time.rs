//! Virtual time for the discrete-event simulator.
//!
//! All simulation time is expressed in integer **microseconds** to keep
//! event ordering exact and the simulation deterministic. Floating-point
//! time is only produced at the metrics/reporting boundary.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, measured in microseconds since the start
/// of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span of simulated time in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(pub u64);

pub const MICROS_PER_MILLI: u64 = 1_000;
pub const MICROS_PER_SEC: u64 = 1_000_000;

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * MICROS_PER_MILLI)
    }

    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    pub fn as_micros(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * MICROS_PER_MILLI)
    }

    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Build a duration from fractional seconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * MICROS_PER_SEC as f64).round() as u64)
    }

    pub fn as_micros(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Scale by a non-negative float (used for CPU speed factors).
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, t: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(t.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(d.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_sub(d.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < MICROS_PER_MILLI {
            write!(f, "{}us", self.0)
        } else if self.0 < MICROS_PER_SEC {
            write!(f, "{:.3}ms", self.0 as f64 / MICROS_PER_MILLI as f64)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_secs(5);
        let d = SimDuration::from_millis(1500);
        assert_eq!((t + d).as_micros(), 6_500_000);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).since(t), d);
    }

    #[test]
    fn subtraction_saturates() {
        let t = SimTime::from_secs(1);
        let later = SimTime::from_secs(2);
        assert_eq!(t - later, SimDuration::ZERO);
        assert_eq!(t.since(later), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.0), SimDuration::from_secs(1));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d * 3, SimDuration::from_millis(300));
        assert_eq!(d / 2, SimDuration::from_millis(50));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(50));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }
}
