//! magma-trace: causal tracing across the message-flow graph.
//!
//! The flow layer (`crates/sim/src/flow.rs`) makes every production
//! actor-to-actor edge a typed [`FlowKind`](crate::FlowKind) crossing
//! [`Ctx::send_to`](crate::Ctx::send_to) — which is exactly the hook
//! Dapper-style context propagation needs. A procedure (attach, detach,
//! path switch, 5G register, S6a auth, metricsd push) is rooted with
//! [`Ctx::trace_start`](crate::Ctx::trace_start); from then on the
//! kernel carries a [`TraceCtx`] on every event scheduled through a flow
//! edge (`send_to` / `send_to_in` / `send_self`), through the CPU model
//! (`try_exec` → `CpuDone`, so queue wait is a first-class hop), and
//! through explicitly-opted causal timers
//! ([`Ctx::trace_timer_in`](crate::Ctx::trace_timer_in), e.g. the RAN's
//! radio-delay leg). Each hop is one span: it opens when the event is
//! scheduled and closes when the event is delivered, so a span's
//! duration is the virtual time the hop actually took — link latency,
//! CPU queueing, retry backoff — with zero instrumentation inside
//! handlers (handlers take zero virtual time by construction).
//!
//! The actor that semantically completes the procedure calls
//! [`Ctx::trace_finish`](crate::Ctx::trace_finish): the **critical
//! path** is the chain of spans from the finishing span up to the root,
//! and its per-[`FlowKind`](crate::FlowKind) durations are aggregated
//! so "attach p99 is
//! 71% S6a round-trip" is a query (`sim.trace.*` registry rows), not a
//! guess. Pending-but-irrelevant spans (an attach timeout that never
//! fires) stay off the path automatically.
//!
//! Determinism: tracing only observes — it never feeds virtual time or
//! the RNG, so it cannot perturb a seeded run. Head sampling is a
//! seeded hash of the trace id ([`sampled`]), trace ids are allocated
//! in dispatch order, and every container is a `Vec`/`BTreeMap`, so
//! same-seed runs export byte-identical trace JSON. Disabled, the whole
//! machinery is one cached-bool branch per scheduling call (the same
//! contract as simprof, and covered by the same <5% overhead gate in
//! `magma-bench --overhead`).

use crate::actor::ActorId;
use crate::registry::Registry;
use crate::time::SimTime;
use serde::Serialize;
use std::collections::{BTreeMap, VecDeque};

/// Sentinel parent index marking a root span.
pub const ROOT_SPAN: u32 = u32::MAX;

/// Per-trace span budget: one procedure tree never grows past this many
/// spans; further hops stop propagating and are counted in
/// `sim.trace.span_overflow_total`.
pub const DEFAULT_SPAN_BUDGET: usize = 512;

/// Maximum causal depth carried by a context; deeper chains stop
/// propagating (counted as overflow). Guards against accidental
/// self-sustaining chains.
pub const MAX_TRACE_DEPTH: u16 = 192;

/// Live (unfinished) traces retained at once; beyond this the oldest is
/// evicted and counted in `sim.trace.evicted_total`.
pub const DEFAULT_LIVE_TRACE_CAP: usize = 1024;

/// Finished trace trees retained for export (oldest dropped first; the
/// per-procedure aggregates keep counting regardless).
pub const DEFAULT_RETAINED_TRACE_CAP: usize = 256;

/// The causal context carried on a kernel-scheduled event (and exposed
/// to the dispatched handler): which trace this event belongs to, the
/// span that parents any hop scheduled under it, and the causal depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    pub trace_id: u64,
    pub parent_span: u32,
    pub depth: u16,
}

/// One hop of a procedure: opened when the event was scheduled, closed
/// when it was delivered.
#[derive(Debug)]
struct SpanRec {
    parent: u32,
    /// The flow-edge name (`FlowKind::name`), or `"cpu"` / `"timer"`
    /// for CPU-model and opted-in timer hops.
    kind: &'static str,
    src: ActorId,
    dst: ActorId,
    start: SimTime,
    end: Option<SimTime>,
}

/// A trace being recorded: the span tree plus root bookkeeping.
#[derive(Debug)]
struct TraceBuf {
    id: u64,
    label: &'static str,
    root_actor: ActorId,
    started: SimTime,
    /// Set by `trace_finish`: (virtual end, finishing span index).
    finished: Option<(SimTime, u32)>,
    spans: Vec<SpanRec>,
    overflow: u64,
}

/// Deterministic head-sampling decision for a trace id: a seeded
/// splitmix64 hash mapped to [0, 1) and compared against the rate.
pub fn sampled(trace_id: u64, seed: u64, rate: f64) -> bool {
    if rate >= 1.0 {
        return true;
    }
    if rate <= 0.0 {
        return false;
    }
    let mut z = trace_id ^ seed ^ 0x9e37_79b9_7f4a_7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    ((z >> 11) as f64 / (1u64 << 53) as f64) < rate
}

/// Per-(procedure, hop-kind) critical-path aggregate.
#[derive(Debug, Default, Clone, Copy)]
struct HopAgg {
    total: SimTime, // sum of hop durations (µs, stored as SimTime for exactness)
    count: u64,
}

/// Per-procedure aggregate over finished traces.
#[derive(Debug, Default, Clone, Copy)]
struct ProcAgg {
    count: u64,
    latency_total_us: u64,
    latency_max_us: u64,
}

/// The kernel-owned tracer. All methods are cheap and deterministic;
/// none are called when tracing is disabled (the kernel guards every
/// call with a cached bool).
#[derive(Debug)]
pub(crate) struct Tracer {
    enabled: bool,
    sample_rate: f64,
    seed: u64,
    next_id: u64,
    span_budget: usize,
    live_cap: usize,
    retained_cap: usize,
    live: BTreeMap<u64, TraceBuf>,
    retained: VecDeque<TraceBuf>,
    started_total: u64,
    sampled_total: u64,
    finished_total: u64,
    spans_total: u64,
    overflow_total: u64,
    evicted_total: u64,
    orphan_total: u64,
    /// (procedure label, hop kind) → critical-path aggregate.
    crit: BTreeMap<(&'static str, &'static str), HopAgg>,
    procs: BTreeMap<&'static str, ProcAgg>,
}

impl Tracer {
    pub fn new(seed: u64) -> Self {
        Tracer {
            enabled: false,
            sample_rate: 1.0,
            seed,
            next_id: 0,
            span_budget: DEFAULT_SPAN_BUDGET,
            live_cap: DEFAULT_LIVE_TRACE_CAP,
            retained_cap: DEFAULT_RETAINED_TRACE_CAP,
            live: BTreeMap::new(),
            retained: VecDeque::new(),
            started_total: 0,
            sampled_total: 0,
            finished_total: 0,
            spans_total: 0,
            overflow_total: 0,
            evicted_total: 0,
            orphan_total: 0,
            crit: BTreeMap::new(),
            procs: BTreeMap::new(),
        }
    }

    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether tracing is recording (mirrors the kernel's cached flag;
    /// kept authoritative here so a snapshot can report it).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    pub fn set_sample_rate(&mut self, rate: f64) {
        self.sample_rate = rate.clamp(0.0, 1.0);
    }

    /// Root a new trace at `actor`. Returns the context the rest of the
    /// dispatch should propagate, or `None` if head sampling skipped it.
    pub fn start(
        &mut self,
        label: &'static str,
        actor: ActorId,
        now: SimTime,
    ) -> Option<TraceCtx> {
        self.next_id += 1;
        let id = self.next_id;
        self.started_total += 1;
        if !sampled(id, self.seed, self.sample_rate) {
            return None;
        }
        self.sampled_total += 1;
        while self.live.len() >= self.live_cap {
            // Evict the oldest live trace: it will never finish.
            let oldest = *self.live.keys().next().unwrap();
            self.live.remove(&oldest);
            self.evicted_total += 1;
        }
        let root = SpanRec {
            parent: ROOT_SPAN,
            kind: label,
            src: actor,
            dst: actor,
            start: now,
            end: None,
        };
        self.live.insert(
            id,
            TraceBuf {
                id,
                label,
                root_actor: actor,
                started: now,
                finished: None,
                spans: vec![root],
                overflow: 0,
            },
        );
        self.spans_total += 1;
        Some(TraceCtx {
            trace_id: id,
            parent_span: 0,
            depth: 0,
        })
    }

    /// Open a span for a hop scheduled under `cur` (a flow-edge send, a
    /// CPU submission, or an opted-in timer). Returns the context to
    /// stamp on the scheduled event, or `None` when the trace is gone or
    /// its span/depth budget is exhausted (propagation stops, counted).
    pub fn child(
        &mut self,
        cur: TraceCtx,
        kind: &'static str,
        src: ActorId,
        dst: ActorId,
        now: SimTime,
    ) -> Option<TraceCtx> {
        let Some(buf) = self.live.get_mut(&cur.trace_id) else {
            self.orphan_total += 1;
            return None;
        };
        if buf.spans.len() >= self.span_budget || cur.depth >= MAX_TRACE_DEPTH {
            buf.overflow += 1;
            self.overflow_total += 1;
            return None;
        }
        let idx = buf.spans.len() as u32;
        buf.spans.push(SpanRec {
            parent: cur.parent_span,
            kind,
            src,
            dst,
            start: now,
            end: None,
        });
        self.spans_total += 1;
        Some(TraceCtx {
            trace_id: cur.trace_id,
            parent_span: idx,
            depth: cur.depth + 1,
        })
    }

    /// Procedure label of a live trace (`None` once retired/evicted).
    pub fn label_of(&self, trace_id: u64) -> Option<&'static str> {
        self.live.get(&trace_id).map(|b| b.label)
    }

    /// A traced event was delivered: close its hop span. The returned
    /// context (same span as parent) becomes the dispatch's current one.
    pub fn deliver(&mut self, ctx: TraceCtx, now: SimTime) -> TraceCtx {
        if let Some(buf) = self.live.get_mut(&ctx.trace_id) {
            if let Some(span) = buf.spans.get_mut(ctx.parent_span as usize) {
                span.end = Some(now);
            }
        } else {
            self.orphan_total += 1;
        }
        ctx
    }

    /// Semantic completion: close the root span, walk the critical path
    /// (finishing span → root), aggregate per-hop durations, and retire
    /// the trace into the bounded export buffer.
    pub fn finish(&mut self, cur: TraceCtx, now: SimTime) {
        let Some(mut buf) = self.live.remove(&cur.trace_id) else {
            self.orphan_total += 1;
            return;
        };
        buf.finished = Some((now, cur.parent_span));
        buf.spans[0].end = Some(now);
        self.finished_total += 1;

        // Critical path: parent chain from the finishing span to the root.
        let latency_us = now.since(buf.started).as_micros();
        let mut idx = cur.parent_span;
        while idx != ROOT_SPAN && idx != 0 {
            let span = &buf.spans[idx as usize];
            let dur = span.end.unwrap_or(now).since(span.start);
            let agg = self.crit.entry((buf.label, span.kind)).or_default();
            agg.total = SimTime(agg.total.0 + dur.as_micros());
            agg.count += 1;
            idx = span.parent;
        }
        let proc = self.procs.entry(buf.label).or_default();
        proc.count += 1;
        proc.latency_total_us += latency_us;
        proc.latency_max_us = proc.latency_max_us.max(latency_us);

        self.retained.push_back(buf);
        while self.retained.len() > self.retained_cap {
            // Evict the trace with the smallest content key — a pure
            // function of the retained set. Insertion order is not:
            // racecheck's permuted window schedules interleave finishes
            // differently, and FIFO eviction would leak that order into
            // the exported snapshot.
            let evict = self
                .retained
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| {
                    (
                        b.finished.map(|(t, _)| t.0).unwrap_or(0),
                        b.started.0,
                        b.label,
                        b.root_actor.0,
                    )
                })
                .map(|(i, _)| i)
                .expect("retained over cap is non-empty");
            self.retained.remove(evict);
        }
    }

    /// Snapshot everything for export; `names` maps `ActorId` → name.
    pub fn snapshot(&self, names: &[&str]) -> TraceSnapshot {
        let name_of = |a: ActorId| -> String {
            names
                .get(a.0 as usize)
                .map(|s| s.to_string())
                .unwrap_or_else(|| format!("actor#{}", a.0))
        };
        let mut open_spans = 0u64;
        let traces: Vec<TraceExport> = self
            .retained
            .iter()
            .map(|buf| {
                open_spans += buf.spans.iter().filter(|s| s.end.is_none()).count() as u64;
                TraceExport {
                    id: buf.id,
                    label: buf.label.to_string(),
                    root: name_of(buf.root_actor),
                    started_us: buf.started.as_micros(),
                    finished_us: buf.finished.map(|(t, _)| t.as_micros()),
                    overflow: buf.overflow,
                    spans: buf
                        .spans
                        .iter()
                        .map(|s| SpanExport {
                            parent: if s.parent == ROOT_SPAN {
                                None
                            } else {
                                Some(s.parent)
                            },
                            kind: s.kind.to_string(),
                            src: name_of(s.src),
                            dst: name_of(s.dst),
                            start_us: s.start.as_micros(),
                            end_us: s.end.map(|t| t.as_micros()),
                        })
                        .collect(),
                }
            })
            .collect();

        let procs = self
            .procs
            .iter()
            .map(|(label, agg)| {
                let mut hops: Vec<HopShare> = self
                    .crit
                    .iter()
                    .filter(|((l, _), _)| l == label)
                    .map(|((_, kind), h)| HopShare {
                        kind: kind.to_string(),
                        total_s: h.total.as_secs_f64(),
                        count: h.count,
                        share: if agg.latency_total_us > 0 {
                            h.total.0 as f64 / agg.latency_total_us as f64
                        } else {
                            0.0
                        },
                    })
                    .collect();
                hops.sort_by(|a, b| {
                    b.total_s
                        .partial_cmp(&a.total_s)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| a.kind.cmp(&b.kind))
                });
                ProcSummary {
                    label: label.to_string(),
                    count: agg.count,
                    latency_total_s: agg.latency_total_us as f64 / 1e6,
                    latency_mean_s: if agg.count > 0 {
                        agg.latency_total_us as f64 / 1e6 / agg.count as f64
                    } else {
                        0.0
                    },
                    latency_max_s: agg.latency_max_us as f64 / 1e6,
                    dominant_hop: hops.first().map(|h| h.kind.clone()),
                    hops,
                }
            })
            .collect();

        TraceSnapshot {
            stats: TraceStats {
                started_total: self.started_total,
                sampled_total: self.sampled_total,
                finished_total: self.finished_total,
                spans_total: self.spans_total,
                span_overflow_total: self.overflow_total,
                evicted_total: self.evicted_total,
                orphan_spans_total: self.orphan_total,
                live_traces: self.live.len() as u64,
                retained_traces: self.retained.len() as u64,
                open_spans,
            },
            procs,
            traces,
        }
    }
}

/// Kernel-level trace counters, all deterministic.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct TraceStats {
    pub started_total: u64,
    pub sampled_total: u64,
    pub finished_total: u64,
    pub spans_total: u64,
    pub span_overflow_total: u64,
    pub evicted_total: u64,
    pub orphan_spans_total: u64,
    pub live_traces: u64,
    pub retained_traces: u64,
    /// Spans never closed among the retained trees (cancelled timers,
    /// in-flight events at snapshot time).
    pub open_spans: u64,
}

/// One hop kind's share of a procedure's critical-path time.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct HopShare {
    pub kind: String,
    pub total_s: f64,
    pub count: u64,
    /// Fraction of the procedure's summed end-to-end latency spent in
    /// this hop kind along the critical path.
    pub share: f64,
}

/// Critical-path attribution for one procedure label, over every
/// finished trace (not just the retained trees).
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct ProcSummary {
    pub label: String,
    pub count: u64,
    pub latency_total_s: f64,
    pub latency_mean_s: f64,
    pub latency_max_s: f64,
    /// The hop kind with the largest critical-path share.
    pub dominant_hop: Option<String>,
    /// All hop kinds, sorted by descending critical-path time.
    pub hops: Vec<HopShare>,
}

/// One exported span; times are virtual microseconds.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct SpanExport {
    pub parent: Option<u32>,
    pub kind: String,
    pub src: String,
    pub dst: String,
    pub start_us: u64,
    pub end_us: Option<u64>,
}

/// One exported trace tree.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct TraceExport {
    pub id: u64,
    pub label: String,
    pub root: String,
    pub started_us: u64,
    pub finished_us: Option<u64>,
    pub overflow: u64,
    pub spans: Vec<SpanExport>,
}

/// Everything the tracer knows, resolved to names and serializable.
/// Byte-deterministic for a given `(scenario, seed)`: contains virtual
/// time only, and every collection is ordered.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct TraceSnapshot {
    pub stats: TraceStats,
    pub procs: Vec<ProcSummary>,
    pub traces: Vec<TraceExport>,
}

/// Replace metric-name-hostile characters in an interpolated segment.
fn metric_seg(s: &str) -> String {
    s.replace('.', "_")
}

impl TraceSnapshot {
    /// Register the tracer's aggregates as `sim.trace.*` rows (see the
    /// `docs/OBSERVABILITY.md` inventory). Call once per registry, the
    /// same contract as `ProfileSnapshot::observe_into`.
    pub fn observe_into(&self, reg: &mut Registry) {
        reg.counter_add("sim.trace.started_total", self.stats.started_total as f64);
        reg.counter_add("sim.trace.sampled_total", self.stats.sampled_total as f64);
        reg.counter_add("sim.trace.finished_total", self.stats.finished_total as f64);
        reg.counter_add("sim.trace.spans_total", self.stats.spans_total as f64);
        reg.counter_add(
            "sim.trace.span_overflow_total",
            self.stats.span_overflow_total as f64,
        );
        reg.counter_add("sim.trace.evicted_total", self.stats.evicted_total as f64);
        reg.counter_add(
            "sim.trace.orphan_spans_total",
            self.stats.orphan_spans_total as f64,
        );
        for proc in &self.procs {
            let label = metric_seg(&proc.label);
            reg.counter_add(&format!("sim.trace.{label}.count"), proc.count as f64);
            reg.gauge_set(
                &format!("sim.trace.{label}.latency_mean_s"),
                proc.latency_mean_s,
            );
            for hop in &proc.hops {
                let kind = metric_seg(&hop.kind);
                reg.gauge_set(&format!("sim.trace.{label}.hop.{kind}_s"), hop.total_s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ActorId = ActorId(0);
    const B: ActorId = ActorId(1);

    fn t(us: u64) -> SimTime {
        SimTime(us)
    }

    fn enabled_tracer() -> Tracer {
        let mut tr = Tracer::new(7);
        tr.set_enabled(true);
        tr
    }

    #[test]
    fn sampling_is_deterministic_and_rate_shaped() {
        let hits: Vec<bool> = (0..1000).map(|id| sampled(id, 42, 0.25)).collect();
        let hits2: Vec<bool> = (0..1000).map(|id| sampled(id, 42, 0.25)).collect();
        assert_eq!(hits, hits2);
        let n = hits.iter().filter(|h| **h).count();
        assert!((150..350).contains(&n), "0.25 rate sampled {n}/1000");
        assert!((0..1000).all(|id| sampled(id, 42, 1.0)));
        assert!(!(0..1000).any(|id| sampled(id, 42, 0.0)));
        // Different seeds select different subsets.
        let other: Vec<bool> = (0..1000).map(|id| sampled(id, 43, 0.25)).collect();
        assert_ne!(hits, other);
    }

    #[test]
    fn span_tree_records_hops_and_critical_path() {
        let mut tr = enabled_tracer();
        let root = tr.start("attach", A, t(0)).unwrap();
        // Hop A→B taking 100µs, then a CPU hop of 50µs, then finish.
        let hop1 = tr.child(root, "s1ap.ul", A, B, t(0)).unwrap();
        let cur = tr.deliver(hop1, t(100));
        let hop2 = tr.child(cur, "cpu", B, B, t(100)).unwrap();
        let cur = tr.deliver(hop2, t(150));
        // A side branch that never completes (a timeout timer).
        let _side = tr.child(cur, "timer", B, B, t(150)).unwrap();
        tr.finish(cur, t(150));

        let snap = tr.snapshot(&["a", "b"]);
        assert_eq!(snap.stats.finished_total, 1);
        assert_eq!(snap.traces.len(), 1);
        let tree = &snap.traces[0];
        assert_eq!(tree.label, "attach");
        assert_eq!(tree.finished_us, Some(150));
        assert_eq!(tree.spans.len(), 4);
        assert_eq!(tree.spans[1].kind, "s1ap.ul");
        assert_eq!(tree.spans[1].end_us, Some(100));
        // The side timer stayed open and off the critical path.
        assert_eq!(snap.stats.open_spans, 1);
        let proc = &snap.procs[0];
        assert_eq!(proc.label, "attach");
        assert_eq!(proc.count, 1);
        assert_eq!(proc.dominant_hop.as_deref(), Some("s1ap.ul"));
        let s1ap = proc.hops.iter().find(|h| h.kind == "s1ap.ul").unwrap();
        assert!((s1ap.total_s - 100e-6).abs() < 1e-12);
        assert!((s1ap.share - 100.0 / 150.0).abs() < 1e-9);
    }

    #[test]
    fn span_budget_bounds_the_tree() {
        let mut tr = enabled_tracer();
        tr.span_budget = 4;
        let root = tr.start("attach", A, t(0)).unwrap();
        let mut cur = root;
        let mut created = 0;
        for i in 0..10 {
            match tr.child(cur, "hop", A, B, t(i)) {
                Some(next) => {
                    cur = tr.deliver(next, t(i + 1));
                    created += 1;
                }
                None => break,
            }
        }
        assert_eq!(created, 3, "budget of 4 = root + 3 hops");
        assert_eq!(tr.overflow_total, 1);
        tr.finish(cur, t(20));
        let snap = tr.snapshot(&[]);
        assert_eq!(snap.traces[0].overflow, 1);
    }

    #[test]
    fn live_cap_evicts_oldest_unfinished() {
        let mut tr = enabled_tracer();
        tr.live_cap = 2;
        let t1 = tr.start("attach", A, t(0)).unwrap();
        let _t2 = tr.start("attach", A, t(1)).unwrap();
        let _t3 = tr.start("attach", A, t(2)).unwrap();
        assert_eq!(tr.evicted_total, 1);
        // The evicted trace's spans become orphans, not panics.
        assert!(tr.child(t1, "hop", A, B, t(3)).is_none());
        assert_eq!(tr.orphan_total, 1);
        tr.finish(t1, t(4));
        assert_eq!(tr.orphan_total, 2);
        assert_eq!(tr.finished_total, 0);
    }

    #[test]
    fn observe_into_emits_inventory_rows() {
        let mut tr = enabled_tracer();
        let root = tr.start("attach", A, t(0)).unwrap();
        let hop = tr.child(root, "net.frame", A, B, t(0)).unwrap();
        let cur = tr.deliver(hop, t(250));
        tr.finish(cur, t(250));
        let snap = tr.snapshot(&[]);
        let mut reg = Registry::new();
        snap.observe_into(&mut reg);
        assert_eq!(reg.counter("sim.trace.started_total"), 1.0);
        assert_eq!(reg.counter("sim.trace.attach.count"), 1.0);
        assert_eq!(
            reg.gauge("sim.trace.attach.hop.net_frame_s"),
            Some(250e-6)
        );
        assert!(reg.gauge("sim.trace.attach.latency_mean_s").is_some());
    }

    #[test]
    fn snapshot_is_deterministic() {
        let run = || {
            let mut tr = enabled_tracer();
            for i in 0..50 {
                if let Some(root) = tr.start("attach", A, t(i)) {
                    if let Some(hop) = tr.child(root, "hop", A, B, t(i)) {
                        let cur = tr.deliver(hop, t(i + 10));
                        tr.finish(cur, t(i + 10));
                    }
                }
            }
            serde_json::to_string(&tr.snapshot(&["a", "b"])).unwrap()
        };
        assert_eq!(run(), run());
    }
}
