//! Structured events: the `eventd` half of Magma's gateway telemetry.
//!
//! Metrics answer "how much / how fast"; events answer "what happened".
//! Magma's `eventd` service collects discrete, typed occurrences —
//! attach failures with their NAS cause codes, bearer teardowns,
//! service restarts — and ships them to the orchestrator where they
//! land in operator dashboards next to the metric time series.
//!
//! Here one bounded [`EventLog`] lives inside the simulation kernel
//! (reached via `Ctx::events()` / `World::events()`), shared by every
//! actor the same way the metric [`Registry`](crate::Registry) is. Each
//! event is stamped with a *per-gateway* monotonically increasing id,
//! the sim time, and the emitting gateway's namespace prefix (`agw0`,
//! `ran`). Ids are deliberately not kernel-global: a global counter
//! would interleave across shard components in kernel dispatch order,
//! which is a window-schedule artifact — magma-racecheck flags exactly
//! that kind of leak, and the northbound export carries the ids. A
//! gateway's `metricsd` drains *its own* events by cursor
//! ([`EventLog::since`]) and ships them in-band alongside metric
//! snapshots; events from prefixes nobody drains (the RAN emulator)
//! stay local, inspectable by the harness.
//!
//! The ring is bounded: when full, the oldest events are dropped and
//! counted, because a misbehaving service must not grow kernel memory
//! without bound — the same reason the metric registry caps instrument
//! cardinality.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

use crate::time::SimTime;

/// Well-known event kinds. Free-form strings are allowed — these
/// constants just keep emitters and tests in agreement.
pub mod kind {
    /// An attach procedure was rejected or timed out. Fields carry the
    /// EMM cause (`emm_cause` numeric, `cause` symbolic) and the IMSI.
    pub const ATTACH_FAILURE: &str = "attach_failure";
    /// An established bearer was torn down abnormally (e.g. the S1
    /// connection to the serving eNB was lost).
    pub const BEARER_DROP: &str = "bearer_drop";
    /// A service (actor) crashed.
    pub const SERVICE_CRASH: &str = "service_crash";
    /// A crashed service was restarted.
    pub const SERVICE_RESTART: &str = "service_restart";
    /// A gateway's control-plane RPC client (re)connected to orc8r.
    pub const ORC8R_CONNECTED: &str = "orc8r_connected";
    /// A gateway's control-plane RPC client lost its orc8r stream.
    pub const ORC8R_DISCONNECTED: &str = "orc8r_disconnected";
    /// The data plane shed bytes because a port backlog overflowed.
    pub const DATAPLANE_OVERLOAD: &str = "dataplane_overload";
    /// RAN-side: a UE lost an established session (context release).
    pub const SESSION_LOST: &str = "session_lost";
    /// RAN-side: a UE found no serving cell with capacity.
    pub const NO_SERVICE: &str = "no_service";
}

/// How urgently an operator should care. Shared by events and alerts.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(rename_all = "lowercase")]
pub enum Severity {
    #[default]
    Info,
    Warning,
    Critical,
}

/// One structured event, as emitted on a gateway and as delivered to
/// the orchestrator. `fields` is a `BTreeMap` so serialized events are
/// byte-stable across same-seed runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StructuredEvent {
    /// Per-gateway monotonic id; the ship-by-cursor key. Scoped to the
    /// emitting gateway so two gateways in different shard components
    /// never race for the next id (the assignment order would depend on
    /// the kernel schedule, not the scenario).
    pub id: u64,
    /// Sim time at emission.
    pub at: SimTime,
    /// Namespace of the emitter (`agw0`, `ran`), matching the metric
    /// prefix convention.
    pub gateway: String,
    /// Event kind, ideally one of [`kind`]'s constants.
    pub kind: String,
    pub severity: Severity,
    /// Kind-specific payload (cause codes, IMSIs, counts) as strings.
    pub fields: BTreeMap<String, String>,
}

/// Default ring capacity: enough for minutes of failure storms without
/// letting a pathological scenario grow kernel memory unboundedly.
pub const DEFAULT_EVENT_CAP: usize = 4096;

/// A bounded ring of [`StructuredEvent`]s with per-gateway monotonic ids.
#[derive(Debug)]
pub struct EventLog {
    ring: VecDeque<StructuredEvent>,
    cap: usize,
    /// Next-id counter per gateway namespace (see [`StructuredEvent::id`]).
    next_id: BTreeMap<String, u64>,
    total: u64,
    dropped: u64,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new(DEFAULT_EVENT_CAP)
    }
}

impl EventLog {
    pub fn new(cap: usize) -> Self {
        EventLog {
            ring: VecDeque::new(),
            cap: cap.max(1),
            next_id: BTreeMap::new(),
            total: 0,
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest when the ring is full.
    /// Returns the assigned id (per gateway, ids start at 1 and never
    /// repeat).
    pub fn emit(
        &mut self,
        at: SimTime,
        gateway: &str,
        kind: &str,
        severity: Severity,
        fields: &[(&str, String)],
    ) -> u64 {
        let id = {
            let n = self.next_id.entry(gateway.to_string()).or_insert(0);
            *n += 1;
            *n
        };
        self.total += 1;
        let ev = StructuredEvent {
            id,
            at,
            gateway: gateway.to_string(),
            kind: kind.to_string(),
            severity,
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        };
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev);
        id
    }

    /// Events for `gateway` with id strictly greater than `after_id`,
    /// oldest first, at most `max` of them. This is the metricsd drain
    /// cursor: ship the returned batch, remember the last id, repeat.
    pub fn since(&self, gateway: &str, after_id: u64, max: usize) -> Vec<StructuredEvent> {
        self.ring
            .iter()
            .filter(|e| e.id > after_id && e.gateway == gateway)
            .take(max)
            .cloned()
            .collect()
    }

    /// All retained events, oldest first (harness-side inspection).
    pub fn iter(&self) -> impl Iterator<Item = &StructuredEvent> {
        self.ring.iter()
    }

    /// Retained events currently in the ring.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever emitted, across all gateways.
    pub fn total_emitted(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emit_n(log: &mut EventLog, gw: &str, n: u64) {
        for i in 0..n {
            log.emit(
                SimTime(i),
                gw,
                kind::ATTACH_FAILURE,
                Severity::Warning,
                &[("i", i.to_string())],
            );
        }
    }

    #[test]
    fn ids_are_monotonic_and_ring_is_bounded() {
        let mut log = EventLog::new(4);
        emit_n(&mut log, "agw0", 6);
        assert_eq!(log.len(), 4);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.total_emitted(), 6);
        let ids: Vec<u64> = log.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![3, 4, 5, 6]);
    }

    #[test]
    fn since_filters_by_gateway_and_cursor() {
        let mut log = EventLog::new(16);
        emit_n(&mut log, "agw0", 3); // agw0 ids 1..=3
        emit_n(&mut log, "agw1", 2); // agw1 ids 1..=2 (its own sequence)
        emit_n(&mut log, "agw0", 2); // agw0 ids 4..=5

        let batch = log.since("agw0", 0, 10);
        assert_eq!(
            batch.iter().map(|e| e.id).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5]
        );
        // Cursor resumes after the last shipped id; `max` truncates.
        let batch = log.since("agw0", 3, 1);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].id, 4);
        assert!(log.since("agw1", 2, 10).is_empty());
        // Id sequences are per gateway: interleaved emitters never
        // observe each other's counter (a kernel-global counter would
        // leak dispatch order into the northbound export).
        assert_eq!(
            log.since("agw1", 0, 10)
                .iter()
                .map(|e| e.id)
                .collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(log.total_emitted(), 7);
    }

    #[test]
    fn events_serialize_deterministically() {
        let mut log = EventLog::new(4);
        log.emit(
            SimTime(42),
            "agw0",
            kind::SERVICE_CRASH,
            Severity::Critical,
            &[("service", "mme".to_string()), ("b", "2".to_string())],
        );
        let ev = log.iter().next().unwrap().clone();
        let json = serde_json::to_string(&ev).unwrap();
        let back: StructuredEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ev);
        // BTreeMap fields serialize in key order.
        assert!(json.find("\"b\"").unwrap() < json.find("\"service\"").unwrap());
        assert!(json.contains("\"severity\":\"critical\""));
    }
}
