//! # magma-sim — deterministic discrete-event simulation engine
//!
//! The substrate for the Magma reproduction: a virtual-time, event-driven
//! simulator in the style the paper's evaluation testbed would provide.
//! Every network element (AGW services, eNodeBs, UEs, the orchestrator) is
//! an [`Actor`] registered in a [`World`]; physical resources (CPU cores,
//! later links via `magma-net`) are modeled with explicit costs so that
//! the paper's saturation behaviors (Figures 5–8) reproduce.
//!
//! Design rules:
//! - **Deterministic**: a seed fully determines a run; events at the same
//!   instant fire in schedule order.
//! - **Event-driven**: actors are state machines, no async runtime.
//! - **Small fault domains**: any actor can be crashed and restarted
//!   independently; stale in-flight events are dropped via generations.

pub mod actor;
pub mod cpu;
pub mod engine;
mod event;
pub mod eventd;
pub mod flow;
pub mod metrics;
pub mod prof;
pub mod racecheck;
pub mod registry;
pub mod shardscope;
pub mod time;
pub mod trace;

pub use actor::{downcast, try_downcast, Actor, ActorId, Event, Payload};
pub use cpu::{CoreGroupSpec, HostId, HostSpec, UtilizationReport};
pub use engine::{Ctx, ExecError, World};
pub use event::EventHandle;
pub use flow::{AliasDecl, AliasScope, Colocate, DelayClass, Dispatch, FlowKind, Role};
pub use prof::{
    HeapStats, HostProfile, HostStopwatch, ProfileSnapshot, ScopeGuard, VirtualProfile,
};
pub use racecheck::{
    detect, first_divergence, permutation, RaceEvent, RaceExport, RaceReport, RunSpec,
    WindowDigest,
};
pub use eventd::{EventLog, Severity, StructuredEvent, DEFAULT_EVENT_CAP};
pub use metrics::{Histogram, Recorder, Series};
pub use registry::{
    BucketHistogram, Registry, RegistrySnapshot, Span, DEFAULT_MAX_INSTRUMENTS_PER_PREFIX,
    DEFAULT_SECONDS_BOUNDS, OVERFLOW_COUNTER,
};
pub use shardscope::{
    PlanComponent, PlanCutEdge, ShardAssignmentRow, ShardAttribution, ShardComponentRow,
    ShardCrossingRow, ShardEdgeRow, ShardPlan, ShardSnapshot, WindowModel, SHARD_PLAN_JSON,
};
pub use time::{SimDuration, SimTime};
pub use trace::{
    HopShare, ProcSummary, SpanExport, TraceCtx, TraceExport, TraceSnapshot, TraceStats,
    DEFAULT_SPAN_BUDGET,
};

#[cfg(test)]
mod tests {
    use super::*;

    /// Ping-pong actor pair: exercises send/receive and timers.
    struct Ping {
        peer: Option<ActorId>,
        count: u32,
    }

    struct Pong;

    #[derive(Debug, PartialEq)]
    struct Ball(u32);

    impl Actor for Ping {
        fn handle(&mut self, ctx: &mut Ctx<'_>, event: Event) {
            match event {
                Event::Start => {
                    if let Some(peer) = self.peer {
                        ctx.send_in(peer, SimDuration::from_millis(10), Box::new(Ball(0)));
                    }
                }
                Event::Msg { payload, .. } => {
                    let Ball(n) = downcast::<Ball>(payload, "ping");
                    self.count = n;
                    if n < 10 {
                        if let Some(peer) = self.peer {
                            ctx.send_in(peer, SimDuration::from_millis(10), Box::new(Ball(n)));
                        }
                    }
                }
                _ => {}
            }
        }
        fn name(&self) -> String {
            "ping".into()
        }
    }

    impl Actor for Pong {
        fn handle(&mut self, ctx: &mut Ctx<'_>, event: Event) {
            if let Event::Msg { from, payload } = event {
                let Ball(n) = downcast::<Ball>(payload, "pong");
                ctx.send_in(from, SimDuration::from_millis(10), Box::new(Ball(n + 1)));
            }
        }
        fn name(&self) -> String {
            "pong".into()
        }
    }

    #[test]
    fn ping_pong_converges_and_time_advances() {
        let mut w = World::new(1);
        let pong = w.add_actor(Box::new(Pong));
        let _ping = w.add_actor(Box::new(Ping {
            peer: Some(pong),
            count: 0,
        }));
        w.run_until(SimTime::from_secs(10));
        assert!(w.now() == SimTime::from_secs(10));
        assert!(w.events_processed() > 20);
    }

    /// An actor that burns CPU per request, like an MME attach pipeline.
    struct Worker {
        host: HostId,
        done: u32,
    }

    impl Actor for Worker {
        fn handle(&mut self, ctx: &mut Ctx<'_>, event: Event) {
            match event {
                Event::Start => {
                    // Submit 4 jobs of 100ms on a 1-core host: they must
                    // serialize, finishing at 100/200/300/400ms.
                    for i in 0..4 {
                        ctx.exec(
                            self.host,
                            "all",
                            SimDuration::from_millis(100),
                            i,
                            Box::new(()),
                        );
                    }
                }
                Event::CpuDone { tag, .. } => {
                    self.done += 1;
                    let t = ctx.now();
                    ctx.metrics().record("done", t, tag as f64);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn cpu_jobs_serialize_on_one_core() {
        let mut w = World::new(1);
        let host = w.add_host(HostSpec::uniform("h", 1, 1.0));
        w.add_actor(Box::new(Worker { host, done: 0 }));
        w.run_until(SimTime::from_secs(1));
        let s = w.metrics().series("done").unwrap();
        let times: Vec<u64> = s.points.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![100_000, 200_000, 300_000, 400_000]);
        let rep = w.utilization(host, "all").unwrap();
        assert_eq!(rep.jobs_completed, 4);
        // 400ms busy over 1s bucket.
        assert!((rep.series[0].1 - 0.4).abs() < 1e-9);
    }

    #[test]
    fn two_cores_run_jobs_in_parallel() {
        let mut w = World::new(1);
        let host = w.add_host(HostSpec::uniform("h", 2, 1.0));
        w.add_actor(Box::new(Worker { host, done: 0 }));
        w.run_until(SimTime::from_secs(1));
        let s = w.metrics().series("done").unwrap();
        let times: Vec<u64> = s.points.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![100_000, 100_000, 200_000, 200_000]);
    }

    /// Crash/restart drops stale events.
    struct Once {
        got: &'static str,
    }

    impl Actor for Once {
        fn handle(&mut self, ctx: &mut Ctx<'_>, event: Event) {
            if let Event::Msg { .. } = event {
                let t = ctx.now();
                let tag = self.got;
                ctx.metrics().record(tag, t, 1.0);
            }
        }
    }

    struct Sender {
        dst: ActorId,
    }

    impl Actor for Sender {
        fn handle(&mut self, ctx: &mut Ctx<'_>, event: Event) {
            if let Event::Start = event {
                // A message in flight for 1s.
                ctx.send_in(self.dst, SimDuration::from_secs(1), Box::new(7u8));
            }
        }
    }

    #[test]
    fn restart_drops_in_flight_events() {
        let mut w = World::new(1);
        let dst = w.add_actor(Box::new(Once { got: "old" }));
        w.add_actor(Box::new(Sender { dst }));
        w.run_until(SimTime::from_millis(500));
        // Crash + restart while the message is in flight.
        w.crash(dst);
        w.restart(dst, Box::new(Once { got: "new" }));
        w.run_until(SimTime::from_secs(2));
        assert!(w.metrics().series("old").is_none());
        assert!(w.metrics().series("new").is_none());
    }

    #[test]
    fn crashed_actor_drops_messages_but_world_continues() {
        let mut w = World::new(1);
        let dst = w.add_actor(Box::new(Once { got: "x" }));
        w.add_actor(Box::new(Sender { dst }));
        w.crash(dst);
        w.run_until(SimTime::from_secs(2));
        assert!(w.metrics().series("x").is_none());
        assert!(!w.is_alive(dst));
    }

    #[test]
    fn identical_seeds_identical_runs() {
        let run = |seed| {
            let mut w = World::new(seed);
            let pong = w.add_actor(Box::new(Pong));
            w.add_actor(Box::new(Ping {
                peer: Some(pong),
                count: 0,
            }));
            w.run_until(SimTime::from_secs(5));
            w.events_processed()
        };
        assert_eq!(run(42), run(42));
    }

    /// Probes a deliberately wrong core group via `try_exec` and records
    /// what it saw, so the test can assert on the error without panicking.
    struct GroupProbe {
        host: HostId,
    }

    impl Actor for GroupProbe {
        fn handle(&mut self, ctx: &mut Ctx<'_>, event: Event) {
            if let Event::Start = event {
                let err = ctx
                    .try_exec(
                        self.host,
                        "nope",
                        SimDuration::from_millis(1),
                        0,
                        Box::new(()),
                    )
                    .unwrap_err();
                assert_eq!(err.host, "h");
                assert_eq!(err.group, "nope");
                assert_eq!(err.available, vec!["all".to_string()]);
                assert!(err.to_string().contains("no core group 'nope'"));
                ctx.registry().counter_add("probe.bad_group", 1.0);

                // Unknown host id reports too, instead of indexing OOB.
                let err = ctx
                    .try_exec(
                        HostId(99),
                        "all",
                        SimDuration::from_millis(1),
                        0,
                        Box::new(()),
                    )
                    .unwrap_err();
                assert_eq!(err.host, "host#99");
                assert!(err.available.is_empty());

                // A valid submission still goes through the same path.
                ctx.try_exec(
                    self.host,
                    "all",
                    SimDuration::from_millis(1),
                    1,
                    Box::new(()),
                )
                .unwrap();
            } else if let Event::CpuDone { .. } = event {
                ctx.registry().counter_add("probe.done", 1.0);
            }
        }
    }

    #[test]
    fn try_exec_reports_missing_group_instead_of_panicking() {
        let mut w = World::new(1);
        let host = w.add_host(HostSpec::uniform("h", 1, 1.0));
        w.add_actor(Box::new(GroupProbe { host }));
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.registry().counter("probe.bad_group"), 1.0);
        assert_eq!(w.registry().counter("probe.done"), 1.0);
    }

    #[test]
    fn registry_snapshots_are_deterministic_across_seeded_runs() {
        let run = |seed| {
            struct R {
                host: HostId,
            }
            impl Actor for R {
                fn handle(&mut self, ctx: &mut Ctx<'_>, event: Event) {
                    match event {
                        Event::Start => {
                            for i in 0..8 {
                                ctx.exec(
                                    self.host,
                                    "all",
                                    SimDuration::from_millis(10 + i),
                                    i,
                                    Box::new(()),
                                );
                            }
                        }
                        Event::CpuDone { queued, .. } => {
                            let now = ctx.now();
                            ctx.registry().counter_add("r.done", 1.0);
                            ctx.registry().gauge_set("r.t_us", now.0 as f64);
                            ctx.registry().observe("r.queued_s", queued.as_secs_f64());
                        }
                        _ => {}
                    }
                }
            }
            let mut w = World::new(seed);
            let host = w.add_host(HostSpec::uniform("h", 2, 1.0));
            w.add_actor(Box::new(R { host }));
            w.run_until(SimTime::from_secs(1));
            w.registry().snapshot()
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn timers_fire_with_tags() {
        struct T {
            fired: Vec<u64>,
        }
        impl Actor for T {
            fn handle(&mut self, ctx: &mut Ctx<'_>, event: Event) {
                match event {
                    Event::Start => {
                        ctx.timer_in(SimDuration::from_millis(5), 1);
                        let h = ctx.timer_in(SimDuration::from_millis(6), 2);
                        ctx.cancel(h);
                        ctx.timer_in(SimDuration::from_millis(7), 3);
                    }
                    Event::Timer { tag } => {
                        self.fired.push(tag);
                        let t = ctx.now();
                        ctx.metrics().record("fired", t, tag as f64);
                    }
                    _ => {}
                }
            }
        }
        let mut w = World::new(1);
        w.add_actor(Box::new(T { fired: vec![] }));
        w.run_until(SimTime::from_secs(1));
        let vals: Vec<f64> = w
            .metrics()
            .series("fired")
            .unwrap()
            .values()
            .collect();
        assert_eq!(vals, vec![1.0, 3.0]);
    }
}
