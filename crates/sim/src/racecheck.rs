//! # magma-racecheck — logical-race detection via permuted window schedules
//!
//! The shard plan (`scripts/golden/shard_plan.json`) promises that the
//! flow graph can be partitioned into components synchronized only at
//! conservative-time-window boundaries (window = the minimum cut-edge
//! lookahead, TANSIV-style). That promise is only sound if executing
//! the components of a window in a *different order* yields the same
//! state — the commutativity Magma's control plane leans on when
//! gateways act on eventually-consistent orchestrator state.
//!
//! Racecheck tests the promise on today's single-threaded engine,
//! before any threads exist:
//!
//! 1. **Canonical run** — the normal `(time, seq)` event order, with a
//!    kernel-armed observer folding one order-invariant digest per
//!    window ([`crate::World::enable_racecheck`]).
//! 2. **Permuted run** — the same scenario executed window by window,
//!    draining each component's event sub-queue in a per-window
//!    permutation of the components (Fisher–Yates over a splitmix64
//!    stream keyed by `schedule_seed ^ window`), same digest fold.
//! 3. **Compare** — the first window whose digests differ is the race
//!    site. [`detect`] then re-runs both schedules recording per-event
//!    detail for that window only, sorts both record sets by a
//!    schedule-independent key, and names the first differing event
//!    pair: component, actor, kind, virtual time, tie-break key.
//!
//! Digests are commutative folds (wrapping sum + xor of per-event FNV
//! hashes, plus dispatch counts, the registry's mutation count, and the
//! pending-event population at the window boundary), so two schedules
//! that dispatch the same event multiset per window with the same
//! cumulative effects produce byte-identical digest streams — any
//! divergence is a genuine schedule dependence, bisected for free by
//! the per-window granularity.
//!
//! The static half of the gate lives in magma-lint: rule S006 bans
//! actor code from reading schedule-dependent kernel-global state, and
//! S007 requires multi-sender cut-edge tie-break keys to incorporate
//! sender identity. See `docs/DETERMINISM.md` § "Logical races and the
//! window schedule".

use crate::actor::{ActorId, Event};
use serde::Serialize;

/// splitmix64: the seed mixer used everywhere racecheck needs cheap
/// deterministic pseudo-randomness (schedule permutations). Matches the
/// constants used by magma-trace's head sampler.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a slice of u64 words (little-endian bytes).
pub fn fnv(words: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// FNV-1a over raw bytes (registry snapshot JSON).
pub fn fnv_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Dense event-kind index, aligned with `prof::KIND_NAMES`.
pub(crate) fn kind_detail(ev: &Event) -> (usize, u64) {
    match ev {
        Event::Start => (0, 0),
        Event::Timer { tag } => (1, *tag),
        Event::Msg { from, .. } => (2, from.0 as u64),
        Event::CpuDone {
            tag,
            host,
            group,
            queued,
            ..
        } => (
            3,
            fnv(&[*tag, host.0 as u64, *group as u64, queued.as_micros()]),
        ),
    }
}

/// Schedule-independent content hash of one scheduled event. Never
/// includes the sequence number — seq assignment order is exactly the
/// schedule-dependent tie-break the detector must see *through*.
pub(crate) fn event_hash(target: ActorId, time_us: u64, ev: &Event) -> u64 {
    let (kind, detail) = kind_detail(ev);
    fnv(&[target.0 as u64, time_us, kind as u64, detail])
}

/// The per-window component visit order: a Fisher–Yates permutation of
/// `0..n` driven by `splitmix64(seed ^ window)`. Component index 0 is
/// the unassigned pseudo-component; shard instances follow at `i + 1`.
pub fn permutation(n: usize, seed: u64, window: u64) -> Vec<usize> {
    let mut v: Vec<usize> = (0..n).collect();
    let mut s = splitmix64(seed ^ window.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    for i in (1..n).rev() {
        s = splitmix64(s);
        let j = (s % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
    v
}

/// One sealed window's order-invariant state digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct WindowDigest {
    /// Window index (`time_us / window_us`); `u64::MAX` marks the
    /// synthetic final digest (resident heap fold + registry hash).
    pub window: u64,
    /// Events dispatched in the window (final digest: whole run).
    pub events: u64,
    /// Wrapping sum of per-event content hashes.
    pub sum: u64,
    /// XOR of per-event content hashes.
    pub xor: u64,
    /// Heap population at the window boundary (final digest: live
    /// resident events).
    pub pending: u64,
    /// Cumulative registry mutation count at the boundary.
    pub registry_mutations: u64,
}

/// Per-event record captured only for the bisected detail window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct EventRecord {
    pub time_us: u64,
    pub target: u32,
    pub kind: usize,
    pub detail: u64,
    /// The `(time, seq)` tie-break key under the recording schedule.
    pub seq: u64,
}

/// The kernel-owned digest recorder. Active in both canonical
/// (`schedule_seed == None`) and permuted modes; the fold itself never
/// depends on intra-window dispatch order.
#[derive(Debug)]
pub(crate) struct RaceObserver {
    pub window_us: u64,
    pub schedule_seed: Option<u64>,
    pub detail_window: Option<u64>,
    cur_window: Option<u64>,
    acc_events: u64,
    acc_sum: u64,
    acc_xor: u64,
    digests: Vec<WindowDigest>,
    detail: Vec<EventRecord>,
    finalized: bool,
}

impl RaceObserver {
    pub fn new(window_us: u64, schedule_seed: Option<u64>) -> Self {
        RaceObserver {
            window_us: window_us.max(1),
            schedule_seed,
            detail_window: None,
            cur_window: None,
            acc_events: 0,
            acc_sum: 0,
            acc_xor: 0,
            digests: Vec::new(),
            detail: Vec::new(),
            finalized: false,
        }
    }

    fn seal(&mut self, pending: u64, registry_mutations: u64) {
        let Some(w) = self.cur_window.take() else {
            return;
        };
        self.digests.push(WindowDigest {
            window: w,
            events: self.acc_events,
            sum: self.acc_sum,
            xor: self.acc_xor,
            pending,
            registry_mutations,
        });
        self.acc_events = 0;
        self.acc_sum = 0;
        self.acc_xor = 0;
    }

    /// Seal the open window if the next event's time falls past it.
    /// Returns whether a seal happened (the caller samples the heap
    /// peak at boundaries). Call with the heap population *after* all
    /// of the open window's events have been drained and *before* any
    /// of the next window's — causal closure makes that population a
    /// pure function of the event set.
    pub fn maybe_seal(
        &mut self,
        next_time_us: u64,
        pending: u64,
        registry_mutations: u64,
    ) -> bool {
        let w = next_time_us / self.window_us;
        match self.cur_window {
            Some(cw) if cw != w => {
                self.seal(pending, registry_mutations);
                true
            }
            _ => false,
        }
    }

    /// Fold one dispatched event into the open window. `tie_break` is
    /// the `(time, seq)` queue sequence the recording schedule used —
    /// captured in detail records (to name the race) but never hashed.
    pub fn record(&mut self, target: ActorId, time_us: u64, ev: &Event, tie_break: u64) {
        let w = time_us / self.window_us;
        if self.cur_window.is_none() {
            self.cur_window = Some(w);
        }
        let h = event_hash(target, time_us, ev);
        self.acc_events += 1;
        self.acc_sum = self.acc_sum.wrapping_add(h);
        self.acc_xor ^= h;
        if self.detail_window == Some(w) {
            let (kind, detail) = kind_detail(ev);
            self.detail.push(EventRecord {
                time_us,
                target: target.0,
                kind,
                detail,
                seq: tie_break,
            });
        }
    }

    /// Seal the trailing window and append the synthetic final digest:
    /// resident-heap fold, registry snapshot hash, and the whole-run
    /// event count. Idempotent.
    pub fn finalize(
        &mut self,
        pending: u64,
        registry_mutations: u64,
        resident: (u64, u64, u64),
        events_processed: u64,
        registry_hash: u64,
    ) {
        if self.finalized {
            return;
        }
        self.finalized = true;
        self.seal(pending, registry_mutations);
        self.digests.push(WindowDigest {
            window: u64::MAX,
            events: events_processed,
            sum: resident.0.wrapping_add(registry_hash),
            xor: resident.1 ^ registry_hash,
            pending: resident.2,
            registry_mutations,
        });
    }

    pub fn digests(&self) -> &[WindowDigest] {
        &self.digests
    }

    pub fn detail_records(&self) -> &[EventRecord] {
        &self.detail
    }
}

/// One side of the offending event pair, fully resolved for the report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct RaceEvent {
    /// Shard-component instance label (`agw[0]`), or `"unassigned"`.
    pub component: String,
    /// Actor name at dispatch time.
    pub actor: String,
    pub actor_id: u32,
    /// Event kind (`start` / `timer` / `msg` / `cpu_done`).
    pub kind: String,
    pub time_us: u64,
    /// Kind-specific content: timer tag, message sender id, or the
    /// CPU-done content hash.
    pub detail: u64,
    /// The `(time, seq)` tie-break key the recording schedule used.
    pub tie_break: u64,
}

impl RaceEvent {
    fn sort_key(&self) -> (u64, u32, String, u64) {
        (self.time_us, self.actor_id, self.kind.clone(), self.detail)
    }
}

/// Everything one instrumented run exports: the digest stream plus the
/// detail records of the requested window (empty unless a detail
/// window was set).
#[derive(Debug, Clone, Serialize)]
pub struct RaceExport {
    pub schedule_seed: Option<u64>,
    pub window_us: u64,
    pub digests: Vec<WindowDigest>,
    pub detail: Vec<RaceEvent>,
}

/// How `detect` asks the caller to run the scenario.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec {
    /// `None` = canonical schedule; `Some(seed)` = permuted windows.
    pub schedule: Option<u64>,
    /// Record per-event detail for this window only.
    pub detail_window: Option<u64>,
}

/// The replayable race report `magma-bench --racecheck` writes as
/// `RACE_<scenario>.json` and CI prints on failure.
#[derive(Debug, Clone, Serialize)]
pub struct RaceReport {
    pub label: String,
    pub schedule_seed: u64,
    pub window_us: u64,
    pub divergent: bool,
    /// First divergent window index (`u64::MAX` = the final state
    /// digest), present only when divergent.
    pub first_divergent_window: Option<u64>,
    /// The offending pair: what the canonical schedule dispatched at
    /// the first divergent position…
    pub canonical: Option<RaceEvent>,
    /// …and what the permuted schedule dispatched there instead.
    pub permuted: Option<RaceEvent>,
    pub windows_compared: u64,
    pub note: String,
}

impl RaceReport {
    /// Human-readable rendering for CI failure messages.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "racecheck[{}] seed={} window={}µs: ",
            self.label, self.schedule_seed, self.window_us
        ));
        if !self.divergent {
            out.push_str(&format!(
                "clean ({} windows byte-identical)\n",
                self.windows_compared
            ));
            return out;
        }
        let w = self.first_divergent_window.unwrap_or(u64::MAX);
        if w == u64::MAX {
            out.push_str("DIVERGENT at the final state digest\n");
        } else {
            out.push_str(&format!(
                "DIVERGENT at window {w} (t = [{}, {})µs)\n",
                w * self.window_us,
                (w + 1) * self.window_us
            ));
        }
        let fmt = |e: &Option<RaceEvent>| match e {
            Some(e) => format!(
                "{} actor '{}' (#{}) kind={} t={}µs detail={:#x} tie_break={}",
                e.component, e.actor, e.actor_id, e.kind, e.time_us, e.detail, e.tie_break
            ),
            None => "<no event at this position>".to_string(),
        };
        out.push_str(&format!("  canonical: {}\n", fmt(&self.canonical)));
        out.push_str(&format!("  permuted:  {}\n", fmt(&self.permuted)));
        out.push_str(&format!("  {}\n", self.note));
        out
    }
}

/// Compare two digest streams; the first mismatching entry names the
/// first divergent window.
pub fn first_divergence(canon: &[WindowDigest], perm: &[WindowDigest]) -> Option<u64> {
    let n = canon.len().max(perm.len());
    for i in 0..n {
        match (canon.get(i), perm.get(i)) {
            (Some(a), Some(b)) if a == b => continue,
            (Some(a), Some(b)) => return Some(a.window.min(b.window)),
            (Some(a), None) => return Some(a.window),
            (None, Some(b)) => return Some(b.window),
            (None, None) => unreachable!(),
        }
    }
    None
}

/// Run the full detector: canonical vs permuted digest streams, then —
/// on divergence — an auto-bisected detail re-run of both schedules
/// that names the offending event pair. The caller supplies a closure
/// that builds and runs the scenario under a [`RunSpec`] and returns
/// its [`RaceExport`] (see `World::enable_racecheck` /
/// `World::race_export`).
pub fn detect<F>(label: &str, mut run: F, schedule_seed: u64) -> RaceReport
where
    F: FnMut(RunSpec) -> RaceExport,
{
    let canon = run(RunSpec {
        schedule: None,
        detail_window: None,
    });
    let perm = run(RunSpec {
        schedule: Some(schedule_seed),
        detail_window: None,
    });
    let windows_compared = canon.digests.len().max(perm.digests.len()) as u64;
    let Some(w) = first_divergence(&canon.digests, &perm.digests) else {
        return RaceReport {
            label: label.to_string(),
            schedule_seed,
            window_us: canon.window_us,
            divergent: false,
            first_divergent_window: None,
            canonical: None,
            permuted: None,
            windows_compared,
            note: "all window digests identical across schedules".to_string(),
        };
    };

    // Bisection is free: the digest stream is per-window, so the first
    // mismatch IS the first divergent window. Re-run both schedules
    // recording per-event detail there.
    let mut cd = run(RunSpec {
        schedule: None,
        detail_window: Some(w),
    })
    .detail;
    let mut pd = run(RunSpec {
        schedule: Some(schedule_seed),
        detail_window: Some(w),
    })
    .detail;
    cd.sort_by_key(|e| e.sort_key());
    pd.sort_by_key(|e| e.sort_key());
    let mut pair: Option<(Option<RaceEvent>, Option<RaceEvent>)> = None;
    for i in 0..cd.len().max(pd.len()) {
        match (cd.get(i), pd.get(i)) {
            (Some(a), Some(b)) if a.sort_key() == b.sort_key() => continue,
            (a, b) => {
                pair = Some((a.cloned(), b.cloned()));
                break;
            }
        }
    }
    let note = match &pair {
        Some(_) => format!(
            "window {w}: the two schedules dispatched different events — \
             the named pair is the first position where the sorted event \
             sets disagree; its content depends on cross-component order"
        ),
        None => format!(
            "window {w}: same event multiset under both schedules but the \
             boundary state (pending events / registry) diverged — a \
             non-commutative state mutation inside the window"
        ),
    };
    let (canonical, permuted) = pair.unwrap_or((None, None));
    RaceReport {
        label: label.to_string(),
        schedule_seed,
        window_us: canon.window_us,
        divergent: true,
        first_divergent_window: Some(w),
        canonical,
        permuted,
        windows_compared,
        note,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_a_deterministic_bijection() {
        let a = permutation(7, 42, 3);
        let b = permutation(7, 42, 3);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..7).collect::<Vec<_>>());
        // Different windows and seeds shuffle differently (with 7! = 5040
        // arrangements a collision across these few draws is vanishing).
        assert_ne!(permutation(7, 42, 4), a);
        assert_ne!(permutation(7, 43, 3), a);
        // n = 1 degenerates to the identity.
        assert_eq!(permutation(1, 9, 0), vec![0]);
    }

    #[test]
    fn event_hash_ignores_schedule_only_fields() {
        let a = event_hash(ActorId(3), 1000, &Event::Timer { tag: 7 });
        let b = event_hash(ActorId(3), 1000, &Event::Timer { tag: 7 });
        assert_eq!(a, b);
        assert_ne!(a, event_hash(ActorId(4), 1000, &Event::Timer { tag: 7 }));
        assert_ne!(a, event_hash(ActorId(3), 1001, &Event::Timer { tag: 7 }));
        assert_ne!(a, event_hash(ActorId(3), 1000, &Event::Timer { tag: 8 }));
        assert_ne!(a, event_hash(ActorId(3), 1000, &Event::Start));
    }

    #[test]
    fn observer_folds_windows_order_invariantly() {
        let run = |order: &[(u32, u64, u64)]| {
            let mut ob = RaceObserver::new(10, None);
            for (i, &(actor, t, tag)) in order.iter().enumerate() {
                ob.maybe_seal(t, 5, 100);
                ob.record(ActorId(actor), t, &Event::Timer { tag }, i as u64);
            }
            ob.finalize(5, 100, (1, 2, 3), order.len() as u64, 9);
            ob.digests().to_vec()
        };
        // Same events, windows intact, intra-window order permuted.
        let a = run(&[(0, 1, 10), (1, 2, 11), (0, 12, 12), (1, 13, 13)]);
        let b = run(&[(1, 2, 11), (0, 1, 10), (1, 13, 13), (0, 12, 12)]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3, "two windows + final digest");
        assert_eq!(a[0].window, 0);
        assert_eq!(a[0].events, 2);
        assert_eq!(a[1].window, 1);
        assert_eq!(a[2].window, u64::MAX);
        // A different event diverges.
        let c = run(&[(0, 1, 10), (1, 2, 99), (0, 12, 12), (1, 13, 13)]);
        assert_eq!(first_divergence(&a, &c), Some(0));
        assert_eq!(first_divergence(&a, &b), None);
    }

    #[test]
    fn detect_localizes_the_divergent_window_and_pair() {
        // Synthetic scenario: window 4 contains a schedule-dependent
        // timer tag (7 canonically, 8 permuted); everything else agrees.
        let run = |spec: RunSpec| {
            let permuted = spec.schedule.is_some();
            let mut ob = RaceObserver::new(10, spec.schedule);
            ob.detail_window = spec.detail_window;
            for w in 0u64..6 {
                let t = w * 10 + 1;
                ob.maybe_seal(t, 3, 50);
                ob.record(ActorId(0), t, &Event::Timer { tag: 1 }, w * 2);
                let tag = if w == 4 && permuted { 8 } else { 7 };
                ob.record(ActorId(1), t, &Event::Timer { tag }, w * 2 + 1);
            }
            ob.finalize(3, 50, (0, 0, 0), 12, 9);
            RaceExport {
                schedule_seed: spec.schedule,
                window_us: 10,
                digests: ob.digests().to_vec(),
                detail: ob
                    .detail_records()
                    .iter()
                    .map(|r| RaceEvent {
                        component: "c".into(),
                        actor: "a".into(),
                        actor_id: r.target,
                        kind: crate::prof::KIND_NAMES[r.kind].to_string(),
                        time_us: r.time_us,
                        detail: r.detail,
                        tie_break: r.seq,
                    })
                    .collect(),
            }
        };
        let report = detect("synthetic", run, 99);
        assert!(report.divergent);
        assert_eq!(report.first_divergent_window, Some(4));
        let c = report.canonical.as_ref().expect("canonical side");
        let p = report.permuted.as_ref().expect("permuted side");
        assert_eq!(c.kind, "timer");
        assert_eq!(c.actor_id, 1);
        assert_eq!(c.detail, 7);
        assert_eq!(p.detail, 8);
        assert!(report.render().contains("DIVERGENT at window 4"));
    }

    #[test]
    fn detect_reports_clean_when_streams_match() {
        let run = |spec: RunSpec| {
            let mut ob = RaceObserver::new(10, spec.schedule);
            for w in 0u64..3 {
                ob.maybe_seal(w * 10, 1, 2);
                ob.record(ActorId(0), w * 10, &Event::Start, w);
            }
            ob.finalize(1, 2, (0, 0, 0), 3, 4);
            RaceExport {
                schedule_seed: spec.schedule,
                window_us: 10,
                digests: ob.digests().to_vec(),
                detail: Vec::new(),
            }
        };
        let report = detect("clean", run, 1);
        assert!(!report.divergent);
        assert!(report.render().contains("clean"));
    }
}
