//! # shardscope — shard-component-aware observability
//!
//! The derived shard partition (`docs/SHARD_PLAN.md`, byte-pinned as
//! `scripts/golden/shard_plan.json`) names the components, replicated
//! hubs, and per-cut-edge lookahead bounds a conservative-time-window
//! DES engine would start from. Shardscope measures, during today's
//! single-threaded deterministic runs, whether that partition will
//! actually pay:
//!
//! 1. **Per-component load** — every dispatch and virtual-CPU charge is
//!    attributed to its shard-component *instance* (`agw[0]`,
//!    `orc8r[0]`), using the same member-resolution rules the lint uses
//!    to derive the plan (dotted-ancestor walk over component member
//!    lists; replicated hubs assigned to their hosting component).
//! 2. **Cut-edge telemetry** — message counts, wire bytes, inter-send
//!    virtual-time gap histograms, and **lookahead slack**: the
//!    send-to-deliver gap minus the edge's lookahead bound, i.e. the
//!    margin a conservative window scheduler would have had. Slack is
//!    measured on physically-crossing kernel sends (`net.frame` is the
//!    only kind that crosses components at the kernel — RPC methods
//!    ride inside stream payloads); logical cut edges (the RPC methods)
//!    are counted at their encode sites via `Ctx::shard_logical`.
//! 3. **Window model** — an online replay of the per-component dispatch
//!    timeline through an idealized conservative-time-window scheduler
//!    (window = min cut-edge lookahead): per-component busy fraction,
//!    blocking windows, and a **predicted parallel speedup** (per-window
//!    critical-component bound), with the whole-run critical-component
//!    bound and the ideal N-way split as brackets.
//!
//! Determinism contract: identical to simprof/magma-trace — shardscope
//! only observes virtual-time quantities, never feeds time or the RNG,
//! and every container is a `Vec`/`BTreeMap`, so same-seed runs export
//! byte-identical [`ShardSnapshot`] JSON. Disabled (the default), every
//! hook costs one cached-bool branch.

use crate::actor::ActorId;
use crate::registry::Registry;
use crate::time::SimDuration;
use serde::Serialize;
use serde_json::Value;
use std::collections::BTreeMap;

/// The byte-pinned shard plan, compiled in so the kernel needs no I/O
/// (and cannot drift from the lint-generated golden without a rebuild).
pub const SHARD_PLAN_JSON: &str = include_str!("../../../scripts/golden/shard_plan.json");

/// Number of log2-µs buckets in a cut edge's inter-send gap histogram:
/// bucket 0 holds zero-gap sends, bucket `b` holds gaps in
/// `[2^(b-1), 2^b)` µs, and the last bucket absorbs everything longer.
pub const GAP_BUCKETS: usize = 24;

fn gap_bucket(gap_us: u64) -> usize {
    if gap_us == 0 {
        0
    } else {
        (64 - gap_us.leading_zeros() as usize).min(GAP_BUCKETS - 1)
    }
}

/// Replace metric-name-hostile characters in an interpolated segment:
/// lowercased, `]` dropped, everything outside `[a-z0-9_]` becomes `_`
/// (`agw[0]` → `agw_0`, `net.frame` → `net_frame`).
fn metric_seg(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        let c = c.to_ascii_lowercase();
        match c {
            ']' => {}
            'a'..='z' | '0'..='9' | '_' => out.push(c),
            _ => out.push('_'),
        }
    }
    out
}

/// One component of the shard plan: a name and the flow-graph member
/// prefixes that map into it.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct PlanComponent {
    pub name: String,
    pub members: Vec<String>,
}

/// One cut edge of the shard plan with its lookahead bound.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct PlanCutEdge {
    pub kind: String,
    pub from: String,
    pub to: String,
    pub lookahead_us: u64,
}

/// The parsed shard plan (`scripts/golden/shard_plan.json`, generated
/// and byte-pinned by magma-lint rule S005).
#[derive(Debug, Clone)]
pub struct ShardPlan {
    pub schema_version: u64,
    pub components: Vec<PlanComponent>,
    pub replicated: Vec<String>,
    pub cut_edges: Vec<PlanCutEdge>,
    /// The conservative time window: the minimum cut-edge lookahead.
    pub window_us: u64,
    edge_by_kind: BTreeMap<String, usize>,
}

impl ShardPlan {
    /// Parse a plan from its JSON form. Errors name the missing field —
    /// a malformed plan is a build artifact bug, not a runtime state.
    pub fn parse(json: &str) -> Result<ShardPlan, String> {
        let v: Value = serde_json::from_str(json).map_err(|e| e.to_string())?;
        let schema_version = v
            .get("schema_version")
            .and_then(Value::as_u64)
            .ok_or("shard plan: missing schema_version")?;
        let mut components = Vec::new();
        for c in v
            .get("components")
            .and_then(Value::as_array)
            .ok_or("shard plan: missing components")?
        {
            let name = c
                .get("name")
                .and_then(Value::as_str)
                .ok_or("shard plan: component without name")?
                .to_string();
            let members = c
                .get("members")
                .and_then(Value::as_array)
                .ok_or("shard plan: component without members")?
                .iter()
                .filter_map(|m| m.as_str().map(str::to_string))
                .collect();
            components.push(PlanComponent { name, members });
        }
        let replicated = v
            .get("replicated")
            .and_then(Value::as_array)
            .map(|a| {
                a.iter()
                    .filter_map(|m| m.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default();
        let mut cut_edges = Vec::new();
        let mut edge_by_kind = BTreeMap::new();
        for e in v
            .get("cut_edges")
            .and_then(Value::as_array)
            .ok_or("shard plan: missing cut_edges")?
        {
            let get = |k: &str| -> Result<String, String> {
                e.get(k)
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or(format!("shard plan: cut edge missing {k}"))
            };
            let edge = PlanCutEdge {
                kind: get("kind")?,
                from: get("from")?,
                to: get("to")?,
                lookahead_us: e
                    .get("lookahead_us")
                    .and_then(Value::as_u64)
                    .ok_or("shard plan: cut edge missing lookahead_us")?,
            };
            edge_by_kind.insert(edge.kind.clone(), cut_edges.len());
            cut_edges.push(edge);
        }
        if cut_edges.is_empty() {
            return Err("shard plan: no cut edges".to_string());
        }
        let window_us = cut_edges.iter().map(|e| e.lookahead_us).min().unwrap();
        Ok(ShardPlan {
            schema_version,
            components,
            replicated,
            cut_edges,
            window_us,
            edge_by_kind,
        })
    }

    /// The compiled-in plan.
    pub fn builtin() -> ShardPlan {
        ShardPlan::parse(SHARD_PLAN_JSON).expect("scripts/golden/shard_plan.json parses")
    }

    /// Resolve a flow-graph member path to its component index: exact
    /// member match first, then the dotted-ancestor walk the lint's
    /// wildcard-receiver rules use (`agw.epc_baseline.mme` → member
    /// `agw.epc_baseline`; `ran.enb` is a member of component `agw`).
    pub fn resolve_member(&self, member: &str) -> Option<usize> {
        let mut probe = member;
        loop {
            for (i, c) in self.components.iter().enumerate() {
                if c.members.iter().any(|m| m == probe) {
                    return Some(i);
                }
            }
            match probe.rfind('.') {
                Some(p) => probe = &probe[..p],
                None => return None,
            }
        }
    }

    /// Whether `member` is a replicated hub (one instance per hosting
    /// component, e.g. `net.stack`).
    pub fn is_replicated(&self, member: &str) -> bool {
        self.replicated.iter().any(|r| r == member)
    }

    /// Index of the cut edge declared for `kind`, if any.
    pub fn edge_index(&self, kind: &str) -> Option<usize> {
        self.edge_by_kind.get(kind).copied()
    }
}

/// Per-component-instance accumulator.
#[derive(Debug, Clone, Default)]
struct InstCell {
    comp: usize,
    instance: u32,
    actors: u64,
    hub_actors: u64,
    dispatches: u64,
    vcpu_us: u64,
    busy_windows: u64,
}

/// Per-cut-edge accumulator.
#[derive(Debug, Clone)]
struct EdgeCell {
    messages: u64,
    bytes: u64,
    min_slack_us: Option<i64>,
    negative_slack: u64,
    last_us: Option<u64>,
    gap_hist: [u64; GAP_BUCKETS],
    /// Send timestamps of the still-open conservative window, folded
    /// into `gap_hist` in sorted order when the window advances. Raw
    /// arrival order within a window is schedule-dependent (racecheck's
    /// permuted drain visits senders out of order); the sorted
    /// per-window multiset is not.
    pending: Vec<u64>,
    cur_win: Option<u64>,
}

impl Default for EdgeCell {
    fn default() -> Self {
        EdgeCell {
            messages: 0,
            bytes: 0,
            min_slack_us: None,
            negative_slack: 0,
            last_us: None,
            gap_hist: [0; GAP_BUCKETS],
            pending: Vec::new(),
            cur_win: None,
        }
    }
}

impl EdgeCell {
    /// Buffer this send's timestamp into the open window, folding the
    /// previous window first if `window` advanced past it.
    fn note_send(&mut self, now_us: u64, window: u64) {
        if self.cur_win != Some(window) {
            self.flush_gaps();
            self.cur_win = Some(window);
        }
        self.pending.push(now_us);
    }

    fn flush_gaps(&mut self) {
        self.pending.sort_unstable();
        for i in 0..self.pending.len() {
            let t = self.pending[i];
            if let Some(last) = self.last_us {
                self.gap_hist[gap_bucket(t.saturating_sub(last))] += 1;
            }
            self.last_us = Some(t);
        }
        self.pending.clear();
    }

    /// Snapshot-time view: the sealed histogram plus the open window
    /// folded virtually (snapshot takes `&self`).
    fn gap_hist_folded(&self) -> [u64; GAP_BUCKETS] {
        let mut hist = self.gap_hist;
        let mut pending = self.pending.clone();
        pending.sort_unstable();
        let mut last = self.last_us;
        for t in pending {
            if let Some(l) = last {
                hist[gap_bucket(t.saturating_sub(l))] += 1;
            }
            last = Some(t);
        }
        hist
    }
}

/// Per-(src instance, dst instance) physical-crossing accumulator.
#[derive(Debug, Clone, Copy, Default)]
struct PairCell {
    messages: u64,
    bytes: u64,
    min_slack_us: Option<i64>,
}

fn fold_min_slack(slot: &mut Option<i64>, slack: i64) {
    *slot = Some(match *slot {
        Some(cur) => cur.min(slack),
        None => slack,
    });
}

/// The kernel-owned shardscope accumulator. All methods are cheap and
/// deterministic; none are called when shardscope is disabled (the
/// kernel guards every call with a cached bool).
#[derive(Debug, Default)]
pub struct ShardScope {
    enabled: bool,
    plan: Option<ShardPlan>,
    /// Actor index → component-instance index.
    assign: Vec<Option<u16>>,
    instances: Vec<InstCell>,
    inst_lookup: BTreeMap<(usize, u32), u16>,
    /// The instance of the dispatch currently being handled, for vCPU
    /// attribution (mirrors simprof's `current`).
    cur_inst: Option<u16>,
    dispatches_attributed: u64,
    dispatches_unattributed: u64,
    vcpu_unattributed_us: u64,
    /// Parallel to `plan.cut_edges`.
    edges: Vec<EdgeCell>,
    pairs: BTreeMap<(u16, u16), PairCell>,
    /// Cross-instance physical sends whose kind is NOT a declared cut
    /// edge — nonzero means the plan's cut set is incomplete.
    noncut_cross: u64,
    // Online conservative-window fold.
    cur_window: Option<u64>,
    win_counts: Vec<u64>,
    occupied_windows: u64,
    serial_units: u64,
    parallel_units: u64,
    first_window: Option<u64>,
    last_window: u64,
}

impl ShardScope {
    pub(crate) fn ensure_plan(&mut self) -> &ShardPlan {
        if self.plan.is_none() {
            let plan = ShardPlan::builtin();
            self.edges = vec![EdgeCell::default(); plan.cut_edges.len()];
            self.plan = Some(plan);
        }
        self.plan.as_ref().unwrap()
    }

    pub fn set_enabled(&mut self, on: bool) {
        if on {
            self.ensure_plan();
        }
        self.enabled = on;
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    fn intern_instance(&mut self, comp: usize, instance: u32) -> u16 {
        if let Some(&i) = self.inst_lookup.get(&(comp, instance)) {
            return i;
        }
        let i = self.instances.len() as u16;
        self.instances.push(InstCell {
            comp,
            instance,
            ..InstCell::default()
        });
        self.win_counts.push(0);
        self.inst_lookup.insert((comp, instance), i);
        i
    }

    fn set_assign(&mut self, actor: ActorId, inst: u16) {
        let idx = actor.0 as usize;
        if self.assign.len() <= idx {
            self.assign.resize(idx + 1, None);
        }
        self.assign[idx] = Some(inst);
    }

    /// Assign an actor to the instance `instance` of the component that
    /// owns flow-graph member `member`. Replicated hubs must use
    /// [`assign_hub`](ShardScope::assign_hub) — the plan replicates
    /// them per hosting component, so the member alone is ambiguous.
    pub(crate) fn assign(
        &mut self,
        actor: ActorId,
        member: &str,
        instance: u32,
    ) -> Result<(), String> {
        let plan = self.ensure_plan();
        if plan.is_replicated(member) {
            return Err(format!(
                "member '{member}' is a replicated hub; use shard_assign_hub with its hosting component"
            ));
        }
        let Some(comp) = plan.resolve_member(member) else {
            return Err(format!(
                "member '{member}' resolves to no shard-plan component"
            ));
        };
        let inst = self.intern_instance(comp, instance);
        self.instances[inst as usize].actors += 1;
        self.set_assign(actor, inst);
        Ok(())
    }

    /// Assign a replicated-hub actor (e.g. a `net.stack` instance) to
    /// the component instance hosting it.
    pub(crate) fn assign_hub(
        &mut self,
        actor: ActorId,
        hub: &str,
        host_member: &str,
        instance: u32,
    ) -> Result<(), String> {
        let plan = self.ensure_plan();
        if !plan.is_replicated(hub) {
            return Err(format!(
                "'{hub}' is not in the plan's replicated-hub list"
            ));
        }
        let Some(comp) = plan.resolve_member(host_member) else {
            return Err(format!(
                "host member '{host_member}' resolves to no shard-plan component"
            ));
        };
        let inst = self.intern_instance(comp, instance);
        self.instances[inst as usize].hub_actors += 1;
        self.set_assign(actor, inst);
        Ok(())
    }

    /// A child actor spawned mid-dispatch inherits its parent's
    /// component instance (the wildcard-receiver rule: dynamically
    /// created receivers live in their creator's shard).
    pub(crate) fn inherit(&mut self, parent: ActorId, child: ActorId) {
        let Some(inst) = self.assign.get(parent.0 as usize).copied().flatten() else {
            return;
        };
        self.instances[inst as usize].actors += 1;
        self.set_assign(child, inst);
    }

    pub(crate) fn window_us(&self) -> u64 {
        self.plan.as_ref().map(|p| p.window_us).unwrap_or(1).max(1)
    }

    /// Number of interned component instances. Racecheck's permuted
    /// drain visits them as sub-queues `1..=count` (0 = unassigned).
    pub(crate) fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Component instance an actor index is assigned to, if any.
    pub(crate) fn instance_of(&self, actor: usize) -> Option<u16> {
        self.assign.get(actor).copied().flatten()
    }

    fn fold_window(&mut self) {
        let mut sum = 0u64;
        let mut mx = 0u64;
        for (i, c) in self.win_counts.iter_mut().enumerate() {
            if *c > 0 {
                sum += *c;
                mx = mx.max(*c);
                self.instances[i].busy_windows += 1;
                *c = 0;
            }
        }
        if sum > 0 {
            self.occupied_windows += 1;
            self.serial_units += sum;
            self.parallel_units += mx;
        }
    }

    /// Attribute one dispatch (only called when enabled). `time_us` is
    /// the dispatch's virtual time; the window fold advances on it.
    pub(crate) fn dispatch_begin(&mut self, actor: usize, time_us: u64) {
        let w = time_us / self.window_us();
        match self.cur_window {
            Some(cw) if cw == w => {}
            Some(_) => {
                self.fold_window();
                self.cur_window = Some(w);
            }
            None => {
                self.cur_window = Some(w);
                self.first_window = Some(w);
            }
        }
        self.last_window = w;
        let inst = self.assign.get(actor).copied().flatten();
        match inst {
            Some(i) => {
                self.instances[i as usize].dispatches += 1;
                self.win_counts[i as usize] += 1;
                self.dispatches_attributed += 1;
            }
            None => self.dispatches_unattributed += 1,
        }
        self.cur_inst = inst;
    }

    /// The dispatch finished; later vCPU charges are unattributed.
    pub(crate) fn dispatch_end(&mut self) {
        self.cur_inst = None;
    }

    /// Charge a CPU-model job's service time to the component instance
    /// of the dispatch that submitted it (only called when enabled).
    pub(crate) fn charge_vcpu(&mut self, service: SimDuration) {
        match self.cur_inst {
            Some(i) => self.instances[i as usize].vcpu_us += service.as_micros(),
            None => self.vcpu_unattributed_us += service.as_micros(),
        }
    }

    /// Record a kernel-scheduled flow-edge send. Only cross-instance
    /// sends count: they are the messages a sharded kernel would have
    /// to fence with the conservative window, and their scheduling
    /// delay minus the edge's lookahead bound is the slack the window
    /// scheduler would have had.
    pub(crate) fn record_send(
        &mut self,
        src: ActorId,
        dst: ActorId,
        kind: &str,
        now_us: u64,
        delay_us: u64,
        bytes: usize,
    ) {
        let si = self.assign.get(src.0 as usize).copied().flatten();
        let di = self.assign.get(dst.0 as usize).copied().flatten();
        let (Some(a), Some(b)) = (si, di) else { return };
        if a == b {
            return;
        }
        let eidx = self.plan.as_ref().and_then(|p| p.edge_index(kind));
        let Some(eidx) = eidx else {
            self.noncut_cross += 1;
            return;
        };
        let lookahead = self.plan.as_ref().unwrap().cut_edges[eidx].lookahead_us;
        let slack = delay_us as i64 - lookahead as i64;
        let w = now_us / self.window_us();
        let e = &mut self.edges[eidx];
        e.messages += 1;
        e.bytes += bytes as u64;
        fold_min_slack(&mut e.min_slack_us, slack);
        if slack < 0 {
            e.negative_slack += 1;
        }
        e.note_send(now_us, w);
        let p = self.pairs.entry((a, b)).or_default();
        p.messages += 1;
        p.bytes += bytes as u64;
        fold_min_slack(&mut p.min_slack_us, slack);
    }

    /// Record a logical cut-edge occurrence: an RPC method (request,
    /// reply, or push) encoded into a stream payload. These never cross
    /// components at the kernel — the carrying `net.frame`s do — so
    /// they are counted at their encode sites with wire bytes but no
    /// physical slack sample.
    pub(crate) fn record_logical(&mut self, method: &str, now_us: u64, bytes: usize) {
        let Some(eidx) = self.plan.as_ref().and_then(|p| p.edge_index(method)) else {
            return;
        };
        let w = now_us / self.window_us();
        let e = &mut self.edges[eidx];
        e.messages += 1;
        e.bytes += bytes as u64;
        e.note_send(now_us, w);
    }

    pub(crate) fn label(&self, inst: u16) -> String {
        let c = &self.instances[inst as usize];
        let name = self
            .plan
            .as_ref()
            .map(|p| p.components[c.comp].name.as_str())
            .unwrap_or("?");
        format!("{name}[{}]", c.instance)
    }

    /// Assemble the snapshot; `names` maps actor index → name for the
    /// assignment table. Deterministic for a given `(scenario, seed)`.
    pub(crate) fn snapshot(&self, names: &[&str]) -> ShardSnapshot {
        let plan = self.plan.as_ref();
        // Fold the pending window without mutating (snapshot is `&self`).
        let mut busy: Vec<u64> = self.instances.iter().map(|c| c.busy_windows).collect();
        let mut occupied = self.occupied_windows;
        let mut serial = self.serial_units;
        let mut parallel = self.parallel_units;
        if self.cur_window.is_some() {
            let mut sum = 0u64;
            let mut mx = 0u64;
            for (i, c) in self.win_counts.iter().enumerate() {
                if *c > 0 {
                    sum += *c;
                    mx = mx.max(*c);
                    busy[i] += 1;
                }
            }
            if sum > 0 {
                occupied += 1;
                serial += sum;
                parallel += mx;
            }
        }

        let mut components = Vec::with_capacity(self.instances.len());
        let mut max_comp_dispatches = 0u64;
        let mut active = 0u64;
        for (&(comp, instance), &i) in &self.inst_lookup {
            let c = &self.instances[i as usize];
            max_comp_dispatches = max_comp_dispatches.max(c.dispatches);
            if c.dispatches > 0 {
                active += 1;
            }
            components.push(ShardComponentRow {
                component: plan
                    .map(|p| p.components[comp].name.clone())
                    .unwrap_or_default(),
                label: self.label(i),
                actors: c.actors,
                hub_actors: c.hub_actors,
                dispatches: c.dispatches,
                vcpu_s: c.vcpu_us as f64 / 1e6,
                busy_windows: busy[i as usize],
                blocked_windows: occupied - busy[i as usize],
                busy_fraction: if occupied > 0 {
                    busy[i as usize] as f64 / occupied as f64
                } else {
                    0.0
                },
            });
            let _ = instance;
        }

        let edges = plan
            .map(|p| {
                p.cut_edges
                    .iter()
                    .zip(&self.edges)
                    .map(|(spec, cell)| {
                        let mut gap_hist: Vec<u64> = cell.gap_hist_folded().to_vec();
                        while gap_hist.last() == Some(&0) {
                            gap_hist.pop();
                        }
                        ShardEdgeRow {
                            kind: spec.kind.clone(),
                            from: spec.from.clone(),
                            to: spec.to.clone(),
                            lookahead_us: spec.lookahead_us,
                            messages: cell.messages,
                            bytes: cell.bytes,
                            min_slack_us: cell.min_slack_us,
                            negative_slack: cell.negative_slack,
                            gap_hist,
                        }
                    })
                    .collect()
            })
            .unwrap_or_default();

        let crossings = self
            .pairs
            .iter()
            .map(|(&(a, b), p)| ShardCrossingRow {
                from: self.label(a),
                to: self.label(b),
                messages: p.messages,
                bytes: p.bytes,
                min_slack_us: p.min_slack_us,
            })
            .collect();

        let total = self.dispatches_attributed + self.dispatches_unattributed;
        let mut assignments: BTreeMap<(String, String), u64> = BTreeMap::new();
        for (idx, inst) in self.assign.iter().enumerate() {
            let Some(i) = inst else { continue };
            let name = names.get(idx).copied().unwrap_or("?").to_string();
            *assignments.entry((name, self.label(*i))).or_default() += 1;
        }

        ShardSnapshot {
            enabled: self.enabled,
            plan_schema_version: plan.map(|p| p.schema_version).unwrap_or(0),
            components,
            edges,
            crossings,
            window_model: WindowModel {
                window_us: self.window_us(),
                occupied_windows: occupied,
                span_windows: self
                    .first_window
                    .map(|f| self.last_window - f + 1)
                    .unwrap_or(0),
                serial_units: serial,
                parallel_units: parallel,
                predicted_speedup: if parallel > 0 {
                    serial as f64 / parallel as f64
                } else {
                    0.0
                },
                critical_bound: if max_comp_dispatches > 0 {
                    self.dispatches_attributed as f64 / max_comp_dispatches as f64
                } else {
                    0.0
                },
                ideal_speedup: active as f64,
            },
            attribution: ShardAttribution {
                dispatches_attributed: self.dispatches_attributed,
                dispatches_unattributed: self.dispatches_unattributed,
                fraction: if total > 0 {
                    self.dispatches_attributed as f64 / total as f64
                } else {
                    0.0
                },
                vcpu_unattributed_s: self.vcpu_unattributed_us as f64 / 1e6,
                noncut_cross_messages: self.noncut_cross,
            },
            assignments: assignments
                .into_iter()
                .map(|((actor, label), count)| ShardAssignmentRow {
                    actor,
                    label,
                    count,
                })
                .collect(),
        }
    }
}

/// Load attribution for one component instance.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct ShardComponentRow {
    /// Plan component name (`agw`).
    pub component: String,
    /// Instance label (`agw[0]`).
    pub label: String,
    /// Actors assigned (replicated-hub actors counted separately).
    pub actors: u64,
    pub hub_actors: u64,
    pub dispatches: u64,
    pub vcpu_s: f64,
    /// Conservative windows in which this instance had ≥1 dispatch.
    pub busy_windows: u64,
    /// Occupied windows in which this instance had none — windows it
    /// would have sat blocked on the barrier.
    pub blocked_windows: u64,
    pub busy_fraction: f64,
}

/// Telemetry for one declared cut edge.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct ShardEdgeRow {
    pub kind: String,
    pub from: String,
    pub to: String,
    pub lookahead_us: u64,
    pub messages: u64,
    pub bytes: u64,
    /// Minimum observed slack (send-to-deliver gap − lookahead bound);
    /// `None` for edges with no physically-crossing sample (logical RPC
    /// edges ride `net.frame`).
    pub min_slack_us: Option<i64>,
    /// Samples with negative slack: messages a conservative window
    /// scheduler could not have delivered in time.
    pub negative_slack: u64,
    /// log2-µs inter-send gap histogram, trailing zeros trimmed.
    pub gap_hist: Vec<u64>,
}

/// Physical message traffic between two component instances.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct ShardCrossingRow {
    pub from: String,
    pub to: String,
    pub messages: u64,
    pub bytes: u64,
    pub min_slack_us: Option<i64>,
}

/// The idealized conservative-time-window replay of the run.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct WindowModel {
    pub window_us: u64,
    /// Windows with at least one dispatch.
    pub occupied_windows: u64,
    /// Windows spanned from first to last dispatch.
    pub span_windows: u64,
    /// Total dispatch work units (1 per dispatch), the serial cost.
    pub serial_units: u64,
    /// Sum over windows of the busiest instance's units — the wall
    /// cost if every window ran its components in parallel.
    pub parallel_units: u64,
    /// `serial_units / parallel_units`: the speedup an idealized
    /// conservative-window engine would get from this partition.
    pub predicted_speedup: f64,
    /// Whole-run critical-component bound: total dispatches over the
    /// busiest instance's dispatches (ignores window synchronization).
    pub critical_bound: f64,
    /// Active instance count — the ideal N-way-split speedup.
    pub ideal_speedup: f64,
}

/// How complete the actor→component mapping was.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct ShardAttribution {
    pub dispatches_attributed: u64,
    pub dispatches_unattributed: u64,
    /// Attributed fraction; 0.0 for an empty run (never NaN).
    pub fraction: f64,
    pub vcpu_unattributed_s: f64,
    /// Cross-instance kernel sends not matching any declared cut edge.
    pub noncut_cross_messages: u64,
}

/// One (actor name, component label) assignment, with the number of
/// actor slots it covers.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct ShardAssignmentRow {
    pub actor: String,
    pub label: String,
    pub count: u64,
}

/// Everything shardscope measured, resolved to names and serializable.
/// Byte-deterministic for a given `(scenario, seed)`: virtual-time
/// quantities only, every collection ordered.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct ShardSnapshot {
    pub enabled: bool,
    pub plan_schema_version: u64,
    pub components: Vec<ShardComponentRow>,
    pub edges: Vec<ShardEdgeRow>,
    pub crossings: Vec<ShardCrossingRow>,
    pub window_model: WindowModel,
    pub attribution: ShardAttribution,
    pub assignments: Vec<ShardAssignmentRow>,
}

impl ShardSnapshot {
    /// Register the shardscope aggregates as `sim.shard.*` rows (see
    /// the `docs/OBSERVABILITY.md` inventory). Call once per registry,
    /// the same contract as `ProfileSnapshot::observe_into`.
    pub fn observe_into(&self, reg: &mut Registry) {
        reg.counter_add(
            "sim.shard.dispatch_attributed_total",
            self.attribution.dispatches_attributed as f64,
        );
        reg.counter_add(
            "sim.shard.dispatch_unattributed_total",
            self.attribution.dispatches_unattributed as f64,
        );
        reg.counter_add(
            "sim.shard.noncut_cross_total",
            self.attribution.noncut_cross_messages as f64,
        );
        let msgs: u64 = self.edges.iter().map(|e| e.messages).sum();
        let bytes: u64 = self.edges.iter().map(|e| e.bytes).sum();
        reg.counter_add("sim.shard.cut_messages_total", msgs as f64);
        reg.counter_add("sim.shard.cut_bytes_total", bytes as f64);
        reg.gauge_set("sim.shard.window_us", self.window_model.window_us as f64);
        reg.gauge_set(
            "sim.shard.predicted_speedup",
            self.window_model.predicted_speedup,
        );
        reg.gauge_set(
            "sim.shard.critical_bound",
            self.window_model.critical_bound,
        );
        for c in &self.components {
            let seg = metric_seg(&c.label);
            reg.counter_add(&format!("sim.shard.{seg}.dispatches"), c.dispatches as f64);
            reg.gauge_set(&format!("sim.shard.{seg}.busy_fraction"), c.busy_fraction);
            reg.gauge_set(&format!("sim.shard.{seg}.vcpu_s"), c.vcpu_s);
        }
        for e in &self.edges {
            let seg = metric_seg(&e.kind);
            reg.counter_add(&format!("sim.shard.edge.{seg}.messages"), e.messages as f64);
            reg.counter_add(&format!("sim.shard.edge.{seg}.bytes"), e.bytes as f64);
            if let Some(s) = e.min_slack_us {
                reg.gauge_set(&format!("sim.shard.edge.{seg}.min_slack_us"), s as f64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope() -> ShardScope {
        let mut s = ShardScope::default();
        s.set_enabled(true);
        s
    }

    #[test]
    fn builtin_plan_parses_and_resolves_members() {
        let plan = ShardPlan::builtin();
        assert_eq!(plan.schema_version, 1);
        assert_eq!(plan.window_us, 10, "min cut-edge lookahead is loopback");
        assert_eq!(plan.components.len(), 4);
        let agw = plan.resolve_member("agw").unwrap();
        assert_eq!(plan.resolve_member("ran.enb"), Some(agw));
        assert_eq!(plan.resolve_member("agw.metricsd"), Some(agw));
        // Dotted-ancestor walk covers members below a declared prefix.
        assert_eq!(plan.resolve_member("agw.epc_baseline.mme"), Some(agw));
        let feg = plan.resolve_member("feg").unwrap();
        assert_eq!(plan.resolve_member("feg.mno"), Some(plan.resolve_member("feg.mno").unwrap()));
        assert_ne!(plan.resolve_member("feg.mno"), Some(feg));
        assert_eq!(plan.resolve_member("nonexistent"), None);
        assert!(plan.is_replicated("net.stack"));
        assert!(plan.edge_index("net.frame").is_some());
        assert!(plan.edge_index("orc8r.Checkin").is_some());
        assert!(plan.edge_index("agw.s1ap_dl").is_none(), "intra edges are not cut edges");
    }

    #[test]
    fn replicated_hub_needs_hub_assignment() {
        let mut s = scope();
        assert!(s.assign(ActorId(0), "net.stack", 0).is_err());
        assert!(s.assign_hub(ActorId(0), "net.stack", "agw", 0).is_ok());
        assert!(s.assign_hub(ActorId(1), "agw", "agw", 0).is_err());
        assert!(s.assign(ActorId(2), "bogus.member", 0).is_err());
    }

    #[test]
    fn window_model_predicts_speedup_from_overlap() {
        let mut s = scope();
        s.assign(ActorId(0), "agw", 0).unwrap();
        s.assign(ActorId(1), "orc8r", 0).unwrap();
        // Window = 10µs. Two windows where both components are busy,
        // one window where only agw runs.
        for (actor, t) in [(0, 0), (1, 2), (0, 11), (1, 13), (0, 25)] {
            s.dispatch_begin(actor, t);
            s.dispatch_end();
        }
        let snap = s.snapshot(&["agw0", "orc8r"]);
        let wm = &snap.window_model;
        assert_eq!(wm.occupied_windows, 3);
        assert_eq!(wm.serial_units, 5);
        assert_eq!(wm.parallel_units, 3, "1+1+1 per-window maxima");
        assert!((wm.predicted_speedup - 5.0 / 3.0).abs() < 1e-12);
        assert!((wm.critical_bound - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(wm.ideal_speedup, 2.0);
        let agw = snap.components.iter().find(|c| c.label == "agw[0]").unwrap();
        assert_eq!(agw.busy_windows, 3);
        assert_eq!(agw.blocked_windows, 0);
        let orc = snap.components.iter().find(|c| c.label == "orc8r[0]").unwrap();
        assert_eq!(orc.busy_windows, 2);
        assert_eq!(orc.blocked_windows, 1);
        assert!((snap.attribution.fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cut_edge_slack_and_gaps_are_recorded() {
        let mut s = scope();
        s.assign_hub(ActorId(0), "net.stack", "agw", 0).unwrap();
        s.assign_hub(ActorId(1), "net.stack", "orc8r", 0).unwrap();
        // Two crossings on net.frame (lookahead 10): ample then negative
        // slack, 100µs apart.
        s.record_send(ActorId(0), ActorId(1), "net.frame", 1000, 2000, 512);
        s.record_send(ActorId(0), ActorId(1), "net.frame", 1100, 5, 256);
        // Same-instance send: never a crossing.
        s.record_send(ActorId(0), ActorId(0), "net.frame", 1200, 10, 64);
        // Cross-instance send off the cut set.
        s.record_send(ActorId(1), ActorId(0), "mystery.kind", 1300, 10, 8);
        let snap = s.snapshot(&[]);
        let e = snap.edges.iter().find(|e| e.kind == "net.frame").unwrap();
        assert_eq!(e.messages, 2);
        assert_eq!(e.bytes, 768);
        assert_eq!(e.min_slack_us, Some(-5));
        assert_eq!(e.negative_slack, 1);
        assert_eq!(e.gap_hist.iter().sum::<u64>(), 1, "one inter-send gap");
        assert_eq!(e.gap_hist[gap_bucket(100)], 1);
        assert_eq!(snap.attribution.noncut_cross_messages, 1);
        assert_eq!(snap.crossings.len(), 1);
        assert_eq!(snap.crossings[0].from, "agw[0]");
        assert_eq!(snap.crossings[0].to, "orc8r[0]");
        assert_eq!(snap.crossings[0].min_slack_us, Some(-5));
    }

    #[test]
    fn logical_edges_count_without_slack() {
        let mut s = scope();
        s.record_logical("orc8r.Checkin", 500, 128);
        s.record_logical("orc8r.Checkin", 600, 128);
        s.record_logical("not.an.edge", 700, 9);
        let snap = s.snapshot(&[]);
        let e = snap.edges.iter().find(|e| e.kind == "orc8r.Checkin").unwrap();
        assert_eq!(e.messages, 2);
        assert_eq!(e.bytes, 256);
        assert_eq!(e.min_slack_us, None);
        assert_eq!(e.gap_hist[gap_bucket(100)], 1);
    }

    #[test]
    fn vcpu_charges_to_current_dispatch_instance() {
        let mut s = scope();
        s.assign(ActorId(0), "agw", 3).unwrap();
        s.dispatch_begin(0, 0);
        s.charge_vcpu(SimDuration::from_millis(2));
        s.dispatch_end();
        s.charge_vcpu(SimDuration::from_millis(1));
        let snap = s.snapshot(&["agw3"]);
        let c = snap.components.iter().find(|c| c.label == "agw[3]").unwrap();
        assert!((c.vcpu_s - 0.002).abs() < 1e-12);
        assert!((snap.attribution.vcpu_unattributed_s - 0.001).abs() < 1e-12);
    }

    #[test]
    fn empty_run_reports_zero_not_nan() {
        let s = scope();
        let snap = s.snapshot(&[]);
        assert_eq!(snap.attribution.fraction, 0.0);
        assert_eq!(snap.window_model.predicted_speedup, 0.0);
        assert_eq!(snap.window_model.critical_bound, 0.0);
        assert!(!snap.attribution.fraction.is_nan());
    }

    #[test]
    fn observe_into_emits_inventory_rows() {
        let mut s = scope();
        s.assign(ActorId(0), "agw", 0).unwrap();
        s.assign_hub(ActorId(1), "net.stack", "orc8r", 0).unwrap();
        s.dispatch_begin(0, 0);
        s.dispatch_end();
        s.record_send(ActorId(0), ActorId(1), "net.frame", 10, 2000, 100);
        s.record_logical("metricsd.Push", 20, 64);
        let snap = s.snapshot(&["agw0", "netstack"]);
        let mut reg = Registry::new();
        snap.observe_into(&mut reg);
        assert_eq!(reg.counter("sim.shard.dispatch_attributed_total"), 1.0);
        assert_eq!(reg.counter("sim.shard.cut_messages_total"), 2.0);
        assert_eq!(reg.counter("sim.shard.agw_0.dispatches"), 1.0);
        assert_eq!(reg.counter("sim.shard.edge.net_frame.messages"), 1.0);
        assert_eq!(reg.counter("sim.shard.edge.metricsd_push.messages"), 1.0);
        assert_eq!(
            reg.gauge("sim.shard.edge.net_frame.min_slack_us"),
            Some(1990.0)
        );
        assert_eq!(reg.gauge("sim.shard.window_us"), Some(10.0));
    }

    #[test]
    fn snapshot_is_deterministic() {
        let run = || {
            let mut s = scope();
            s.assign(ActorId(0), "agw", 0).unwrap();
            s.assign(ActorId(1), "orc8r", 0).unwrap();
            for i in 0..200u64 {
                s.dispatch_begin((i % 2) as usize, i * 3);
                if i % 5 == 0 {
                    s.charge_vcpu(SimDuration::from_micros(40));
                }
                s.dispatch_end();
                if i % 7 == 0 {
                    s.record_send(ActorId(0), ActorId(1), "net.frame", i * 3, 2000, 80);
                }
            }
            serde_json::to_string(&s.snapshot(&["a", "b"])).unwrap()
        };
        assert_eq!(run(), run());
    }
}
