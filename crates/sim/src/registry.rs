//! Typed metric instruments: counters, gauges, fixed-bucket histograms,
//! and procedure spans — the substrate Magma's per-service `metricsd`
//! samples on every gateway.
//!
//! The older [`Recorder`](crate::Recorder) keeps raw `(time, value)`
//! series for figure extraction; the [`Registry`] here is the
//! operational view: cheap to snapshot, cheap to ship over the modeled
//! network, and mergeable on the orchestrator side. Instruments are
//! created on first use and addressed by dotted name following the
//! `<service>.<object>[_<unit>]` convention documented in
//! `docs/OBSERVABILITY.md` (e.g. `agw0.mme.attach.s1ap_s`,
//! `ran.attach_ok`).
//!
//! Everything is deterministic: no wall-clock, no randomness, and all
//! maps are `BTreeMap`s so snapshots serialize in a stable order.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::time::{SimDuration, SimTime};

/// Order-independent `f64` accumulation: both operands are quantized to
/// fixed-point microunits (1e-6) before adding, so a sum over any
/// permutation of the same observations lands on the same bits. Plain
/// float addition is not associative, which would make counter and
/// histogram sums depend on dispatch order — exactly the schedule
/// dependence magma-racecheck exists to rule out. The 1e-6 grain
/// matches the kernel's microsecond time base; values above ~2^53/1e6
/// (≈9e9) would lose integer exactness, far beyond any modeled metric.
fn quantized_add(sum: f64, v: f64) -> f64 {
    const SCALE: f64 = 1e6;
    ((sum * SCALE).round() + (v * SCALE).round()) / SCALE
}

/// Default histogram bounds for latency-style observations, in seconds.
///
/// Chosen to bracket the procedure latencies the paper cares about:
/// sub-millisecond data-plane work up through multi-second attach storms.
pub const DEFAULT_SECONDS_BOUNDS: [f64; 14] = [
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0,
];

/// A fixed-bucket histogram (Prometheus-style, cumulative on query).
///
/// `bounds` are inclusive upper bounds; `counts` has one extra slot for
/// overflow. The struct doubles as its own wire snapshot: it is plain
/// data, serde-serializable, and mergeable across gateways when bucket
/// bounds agree. `min`/`max` are `0.0` (not ±∞) when empty so the JSON
/// encoding round-trips.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketHistogram {
    /// Inclusive upper bounds, strictly increasing.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; `counts[bounds.len()]` is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value (0.0 while `count == 0`).
    pub min: f64,
    /// Largest observed value (0.0 while `count == 0`).
    pub max: f64,
}

impl Default for BucketHistogram {
    fn default() -> Self {
        BucketHistogram::new(&DEFAULT_SECONDS_BOUNDS)
    }
}

impl BucketHistogram {
    pub fn new(bounds: &[f64]) -> Self {
        BucketHistogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
        }
    }

    /// Record one observation. Non-finite values are dropped (they would
    /// poison `sum` and cannot survive a JSON round-trip).
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            if v < self.min {
                self.min = v;
            }
            if v > self.max {
                self.max = v;
            }
        }
        self.count += 1;
        self.sum = quantized_add(self.sum, v);
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`) by linear
    /// interpolation within the bucket holding the target rank. The
    /// overflow bucket reports `max`. Empty histograms report 0.0.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let prev = cum;
            cum += c;
            if cum >= rank && c > 0 {
                if i == self.bounds.len() {
                    return self.max;
                }
                let upper = self.bounds[i];
                let lower = if i == 0 {
                    self.min.min(upper)
                } else {
                    self.bounds[i - 1]
                };
                let frac = (rank - prev) as f64 / c as f64;
                let v = lower + frac * (upper - lower);
                return v.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Convenience: `p` in percent (`percentile(99.0)` = `quantile(0.99)`).
    pub fn percentile(&self, p: f64) -> f64 {
        self.quantile(p / 100.0)
    }

    /// Merge another histogram with identical bounds into this one.
    /// Returns `false` (leaving `self` untouched) when bounds differ.
    pub fn merge(&mut self, other: &BucketHistogram) -> bool {
        if self.bounds != other.bounds {
            return false;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        if other.count > 0 {
            if self.count == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
        }
        self.count += other.count;
        self.sum = quantized_add(self.sum, other.sum);
        true
    }
}

/// A point-in-time copy of a registry, suitable for shipping over the
/// modeled network (`metricsd` → orc8r) and for deterministic export.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    pub counters: BTreeMap<String, f64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, BucketHistogram>,
}

/// Default cap on instruments per namespace prefix — see
/// [`Registry::set_max_instruments_per_prefix`].
pub const DEFAULT_MAX_INSTRUMENTS_PER_PREFIX: usize = 256;

/// Name (under each prefix) of the counter recording registrations the
/// cardinality guard rejected. Exempt from the cap itself, and shipped
/// to the orchestrator like any other counter.
pub const OVERFLOW_COUNTER: &str = "registry_overflow_total";

/// A registry of named instruments. One lives inside the simulation
/// kernel (reachable via `Ctx::registry()`), shared by every actor in
/// the world the way Magma services share a host's metric namespace —
/// name prefixes (`agw0.`, `ran.`) keep services apart.
///
/// Each prefix may create at most a bounded number of distinct
/// instruments (default [`DEFAULT_MAX_INSTRUMENTS_PER_PREFIX`]); excess
/// registrations are dropped and tallied in
/// `<prefix>.registry_overflow_total`, so a service that interpolates
/// unbounded labels into metric names cannot bloat `metricsd` pushes.
#[derive(Debug)]
pub struct Registry {
    counters: BTreeMap<String, f64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, BucketHistogram>,
    max_per_prefix: usize,
    prefix_counts: BTreeMap<String, usize>,
    /// Total mutation operations (counter adds, gauge sets, histogram
    /// observations). An order-invariant progress measure folded into
    /// racecheck's per-window digests.
    mutations: u64,
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            max_per_prefix: DEFAULT_MAX_INSTRUMENTS_PER_PREFIX,
            prefix_counts: BTreeMap::new(),
            mutations: 0,
        }
    }
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Cap the number of distinct instruments each namespace prefix
    /// (the first dotted segment: `agw0`, `ran`) may create. Existing
    /// instruments are never evicted; lowering the cap only affects
    /// future registrations.
    pub fn set_max_instruments_per_prefix(&mut self, cap: usize) {
        self.max_per_prefix = cap.max(1);
    }

    pub fn max_instruments_per_prefix(&self) -> usize {
        self.max_per_prefix
    }

    /// Admit a *new* instrument name, charging it against its prefix's
    /// cardinality budget. Returns `false` (and bumps the prefix's
    /// overflow counter) when the budget is exhausted. Names without a
    /// dotted prefix and the overflow counter itself are exempt.
    fn admit(&mut self, name: &str) -> bool {
        let Some((prefix, rest)) = name.split_once('.') else {
            return true;
        };
        if rest == OVERFLOW_COUNTER {
            return true;
        }
        let n = self.prefix_counts.entry(prefix.to_string()).or_insert(0);
        if *n < self.max_per_prefix {
            *n += 1;
            return true;
        }
        let overflow = format!("{prefix}.{OVERFLOW_COUNTER}");
        *self.counters.entry(overflow).or_insert(0.0) += 1.0;
        false
    }

    /// Add to a monotonic counter (created at 0 on first use). Sums are
    /// accumulated in fixed-point microunits (see `quantized_add`), so
    /// the final value is independent of the order contributions arrive.
    pub fn counter_add(&mut self, name: &str, by: f64) {
        self.mutations += 1;
        if let Some(c) = self.counters.get_mut(name) {
            *c = quantized_add(*c, by);
            return;
        }
        if self.admit(name) {
            self.counters
                .insert(name.to_string(), quantized_add(0.0, by));
        }
    }

    /// Set a gauge to its current value.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.mutations += 1;
        if let Some(g) = self.gauges.get_mut(name) {
            *g = v;
            return;
        }
        if self.admit(name) {
            self.gauges.insert(name.to_string(), v);
        }
    }

    /// Observe into a histogram with the default latency bounds.
    pub fn observe(&mut self, name: &str, v: f64) {
        self.observe_with(name, &DEFAULT_SECONDS_BOUNDS, v);
    }

    /// Observe into a histogram created with explicit bounds. Bounds are
    /// fixed on first use; later calls reuse the existing buckets.
    pub fn observe_with(&mut self, name: &str, bounds: &[f64], v: f64) {
        self.mutations += 1;
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(v);
            return;
        }
        if self.admit(name) {
            self.histograms
                .insert(name.to_string(), BucketHistogram::new(bounds));
            self.histograms.get_mut(name).unwrap().observe(v);
        }
    }

    /// Total mutation operations performed on this registry since
    /// construction (order-invariant; see the field doc).
    pub fn mutation_count(&self) -> u64 {
        self.mutations
    }

    pub fn counter(&self, name: &str) -> f64 {
        self.counters.get(name).copied().unwrap_or(0.0)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    pub fn histogram(&self, name: &str) -> Option<&BucketHistogram> {
        self.histograms.get(name)
    }

    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(|s| s.as_str())
    }

    pub fn gauge_names(&self) -> impl Iterator<Item = &str> {
        self.gauges.keys().map(|s| s.as_str())
    }

    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(|s| s.as_str())
    }

    /// Copy every instrument.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }

    /// Copy the instruments under `"<prefix>."`, stripping the prefix —
    /// this is what a gateway's `metricsd` ships: `agw0.mme.attach.s1ap_s`
    /// leaves the box as `mme.attach.s1ap_s`, so the orchestrator can
    /// merge the same instrument across gateways.
    pub fn snapshot_prefixed(&self, prefix: &str) -> RegistrySnapshot {
        let pfx = format!("{prefix}.");
        let mut snap = RegistrySnapshot::default();
        for (k, v) in &self.counters {
            if let Some(rest) = k.strip_prefix(&pfx) {
                snap.counters.insert(rest.to_string(), *v);
            }
        }
        for (k, v) in &self.gauges {
            if let Some(rest) = k.strip_prefix(&pfx) {
                snap.gauges.insert(rest.to_string(), *v);
            }
        }
        for (k, v) in &self.histograms {
            if let Some(rest) = k.strip_prefix(&pfx) {
                snap.histograms.insert(rest.to_string(), v.clone());
            }
        }
        snap
    }
}

/// Times a multi-stage procedure in sim time and feeds each stage's
/// duration into the registry on completion.
///
/// A span is begun when the procedure starts (e.g. an Initial UE
/// Message arriving), [`mark`](Span::mark)ed as each stage completes
/// (S1AP → NAS auth → session setup → GTP bearer install), and
/// [`finish`](Span::finish)ed on success — producing one histogram per
/// stage (`<name>.<stage>_s`) plus `<name>.total_s`. Spans of failed
/// procedures are simply dropped and record nothing, keeping the stage
/// histograms success-conditioned like the paper's attach latency.
#[derive(Debug, Clone)]
pub struct Span {
    name: String,
    last: SimTime,
    stages: Vec<(String, SimDuration)>,
}

impl Span {
    /// Start a span named after the metric base it will record under,
    /// e.g. `agw0.mme.attach`.
    pub fn begin(name: impl Into<String>, now: SimTime) -> Self {
        Span {
            name: name.into(),
            last: now,
            stages: Vec::new(),
        }
    }

    /// Close the current stage: its duration is the sim time elapsed
    /// since the previous mark (or since `begin` for the first stage).
    pub fn mark(&mut self, stage: &str, now: SimTime) {
        let d = now.since(self.last);
        self.stages.push((stage.to_string(), d));
        self.last = now;
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stages marked so far, in order.
    pub fn stages(&self) -> &[(String, SimDuration)] {
        &self.stages
    }

    /// Total time across all marked stages.
    pub fn total(&self) -> SimDuration {
        let us = self.stages.iter().map(|(_, d)| d.0).sum();
        SimDuration(us)
    }

    /// Record each stage into `<name>.<stage>_s` and the sum into
    /// `<name>.total_s`, consuming the span.
    pub fn finish(self, reg: &mut Registry) {
        let mut total = 0u64;
        for (stage, d) in &self.stages {
            reg.observe(&format!("{}.{stage}_s", self.name), d.as_secs_f64());
            total += d.0;
        }
        reg.observe(
            &format!("{}.total_s", self.name),
            SimDuration(total).as_secs_f64(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = BucketHistogram::new(&[1.0, 2.0, 5.0, 10.0]);
        for v in 1..=10 {
            h.observe(v as f64);
        }
        // 1 | 2 | 3,4,5 | 6..10 | overflow
        assert_eq!(h.counts, vec![1, 1, 3, 5, 0]);
        assert_eq!(h.count, 10);
        assert_eq!(h.sum, 55.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 10.0);
        assert_eq!(h.quantile(0.5), 5.0);
        assert_eq!(h.quantile(1.0), 10.0);
        assert_eq!(h.percentile(100.0), 10.0);
        // p10 lands in the first bucket: interpolates from min.
        assert!(h.quantile(0.1) <= 1.0 && h.quantile(0.1) >= h.min);
        // Quantiles are monotone in q.
        let mut prev = 0.0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= prev, "quantile({q}) = {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn histogram_overflow_and_empty() {
        let mut h = BucketHistogram::new(&[1.0]);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        h.observe(100.0);
        assert_eq!(h.counts, vec![0, 1]);
        assert_eq!(h.quantile(0.99), 100.0);
        // Non-finite observations are dropped.
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.count, 1);
    }

    #[test]
    fn histogram_merge_requires_equal_bounds() {
        let mut a = BucketHistogram::new(&[1.0, 2.0]);
        let mut b = BucketHistogram::new(&[1.0, 2.0]);
        a.observe(0.5);
        b.observe(1.5);
        b.observe(9.0);
        assert!(a.merge(&b));
        assert_eq!(a.count, 3);
        assert_eq!(a.counts, vec![1, 1, 1]);
        assert_eq!(a.min, 0.5);
        assert_eq!(a.max, 9.0);

        let c = BucketHistogram::new(&[3.0]);
        assert!(!a.merge(&c));
        assert_eq!(a.count, 3);
    }

    #[test]
    fn registry_instruments() {
        let mut r = Registry::new();
        r.counter_add("agw0.mme.attach_start", 1.0);
        r.counter_add("agw0.mme.attach_start", 2.0);
        r.gauge_set("agw0.sessiond.sessions", 40.0);
        r.gauge_set("agw0.sessiond.sessions", 41.0);
        r.observe("agw0.mme.attach.total_s", 0.25);
        assert_eq!(r.counter("agw0.mme.attach_start"), 3.0);
        assert_eq!(r.counter("missing"), 0.0);
        assert_eq!(r.gauge("agw0.sessiond.sessions"), Some(41.0));
        assert_eq!(r.histogram("agw0.mme.attach.total_s").unwrap().count, 1);
    }

    #[test]
    fn snapshot_prefixed_strips_gateway_id() {
        let mut r = Registry::new();
        r.counter_add("agw0.mme.attach_accept", 5.0);
        r.counter_add("agw1.mme.attach_accept", 7.0);
        r.gauge_set("agw0.cpu.percent", 37.5);
        r.observe("agw0.mme.attach.s1ap_s", 0.01);
        r.counter_add("ran.attach_ok", 9.0);

        let snap = r.snapshot_prefixed("agw0");
        assert_eq!(snap.counters.get("mme.attach_accept"), Some(&5.0));
        assert_eq!(snap.gauges.get("cpu.percent"), Some(&37.5));
        assert!(snap.histograms.contains_key("mme.attach.s1ap_s"));
        assert!(!snap.counters.contains_key("ran.attach_ok"));
        assert_eq!(snap.counters.len(), 1);

        let full = r.snapshot();
        assert_eq!(full.counters.len(), 3);
    }

    #[test]
    fn cardinality_guard_drops_excess_and_counts_overflow() {
        let mut r = Registry::new();
        r.set_max_instruments_per_prefix(2);
        r.counter_add("agw0.mme.a", 1.0);
        r.gauge_set("agw0.mme.b", 2.0);
        // Budget exhausted: new instruments of any type are dropped.
        r.counter_add("agw0.mme.c", 5.0);
        r.observe("agw0.mme.d_s", 0.1);
        assert_eq!(r.counter("agw0.mme.c"), 0.0);
        assert!(r.histogram("agw0.mme.d_s").is_none());
        assert_eq!(r.counter("agw0.registry_overflow_total"), 2.0);
        // Existing instruments keep updating.
        r.counter_add("agw0.mme.a", 1.0);
        r.gauge_set("agw0.mme.b", 3.0);
        assert_eq!(r.counter("agw0.mme.a"), 2.0);
        assert_eq!(r.gauge("agw0.mme.b"), Some(3.0));
        // Other prefixes have their own budget.
        r.counter_add("agw1.mme.a", 1.0);
        assert_eq!(r.counter("agw1.mme.a"), 1.0);
        assert_eq!(r.counter("agw1.registry_overflow_total"), 0.0);
        // The overflow counter ships like any instrument, prefix-stripped.
        let snap = r.snapshot_prefixed("agw0");
        assert_eq!(snap.counters.get(OVERFLOW_COUNTER), Some(&2.0));
    }

    #[test]
    fn span_records_stage_and_total_histograms() {
        let mut r = Registry::new();
        let t0 = SimTime(1_000_000);
        let mut span = Span::begin("agw0.mme.attach", t0);
        span.mark("s1ap", SimTime(1_010_000));
        span.mark("nas_auth", SimTime(1_040_000));
        span.mark("session_setup", SimTime(1_045_000));
        span.mark("bearer_install", SimTime(1_060_000));
        assert_eq!(span.total(), SimDuration(60_000));
        span.finish(&mut r);

        let s1ap = r.histogram("agw0.mme.attach.s1ap_s").unwrap();
        assert_eq!(s1ap.count, 1);
        assert!((s1ap.sum - 0.01).abs() < 1e-9);
        let total = r.histogram("agw0.mme.attach.total_s").unwrap();
        assert!((total.sum - 0.06).abs() < 1e-9);
    }
}
