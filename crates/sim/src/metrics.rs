//! Measurement recording for experiments.
//!
//! The testbed (our Spirent Landslide analog) measures connection success
//! rate in 5-second bins, achieved throughput over time, and CPU
//! utilization. The [`Recorder`] collects raw observations during a run;
//! binning and summary statistics are computed afterwards.

use crate::time::{SimDuration, SimTime};
use serde::Serialize;
use std::collections::BTreeMap;

/// A named time series of `(time, value)` samples.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Series {
    pub points: Vec<(u64, f64)>,
}

impl Series {
    pub fn push(&mut self, t: SimTime, v: f64) {
        self.points.push((t.as_micros(), v));
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Sum of values per fixed-width bin, as `(bin_start, sum)`.
    pub fn bin_sum(&self, width: SimDuration) -> Vec<(SimTime, f64)> {
        self.bin(width, |vs| vs.iter().sum())
    }

    /// Mean of values per fixed-width bin; empty bins yield 0.
    pub fn bin_mean(&self, width: SimDuration) -> Vec<(SimTime, f64)> {
        self.bin(width, |vs| {
            if vs.is_empty() {
                0.0
            } else {
                vs.iter().sum::<f64>() / vs.len() as f64
            }
        })
    }

    /// Convert event values (e.g., bytes per sample) into a rate per
    /// second over fixed-width bins.
    pub fn bin_rate_per_sec(&self, width: SimDuration) -> Vec<(SimTime, f64)> {
        let secs = width.as_secs_f64().max(1e-9);
        self.bin_sum(width)
            .into_iter()
            .map(|(t, s)| (t, s / secs))
            .collect()
    }

    fn bin(&self, width: SimDuration, f: impl Fn(&[f64]) -> f64) -> Vec<(SimTime, f64)> {
        let w = width.as_micros().max(1);
        if self.points.is_empty() {
            return Vec::new();
        }
        let last = self.points.iter().map(|(t, _)| *t).max().unwrap();
        let n = (last / w) as usize + 1;
        let mut bins: Vec<Vec<f64>> = vec![Vec::new(); n];
        for &(t, v) in &self.points {
            bins[(t / w) as usize].push(v);
        }
        bins.iter()
            .enumerate()
            .map(|(i, vs)| (SimTime(i as u64 * w), f(vs)))
            .collect()
    }

    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|(_, v)| *v)
    }

    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.values().sum::<f64>() / self.points.len() as f64
    }

    pub fn max(&self) -> f64 {
        self.values().fold(f64::NEG_INFINITY, f64::max)
    }
}

/// A distribution of observations with percentile queries.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Histogram {
    pub samples: Vec<f64>,
}

impl Histogram {
    pub fn observe(&mut self, v: f64) {
        self.samples.push(v);
    }

    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// p in [0, 100]. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = (p / 100.0 * (s.len() - 1) as f64).round() as usize;
        s[rank.min(s.len() - 1)]
    }

    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }
}

/// Central sink for all measurements taken during a simulation run.
#[derive(Debug, Default)]
pub struct Recorder {
    series: BTreeMap<String, Series>,
    counters: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Recorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample to the named time series.
    pub fn record(&mut self, name: &str, t: SimTime, v: f64) {
        self.series.entry(name.to_string()).or_default().push(t, v);
    }

    /// Increment a monotonic counter.
    pub fn inc(&mut self, name: &str, by: f64) {
        *self.counters.entry(name.to_string()).or_insert(0.0) += by;
    }

    /// Record one observation into a distribution.
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(v);
    }

    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    pub fn counter(&self, name: &str) -> f64 {
        self.counters.get(name).copied().unwrap_or(0.0)
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(|s| s.as_str())
    }

    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(|s| s.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_binning_sums_and_rates() {
        let mut s = Series::default();
        // 1000 bytes at t=0.2s, 3000 at t=0.7s, 2000 at t=1.1s.
        s.push(SimTime::from_millis(200), 1000.0);
        s.push(SimTime::from_millis(700), 3000.0);
        s.push(SimTime::from_millis(1100), 2000.0);
        let sums = s.bin_sum(SimDuration::from_secs(1));
        assert_eq!(sums.len(), 2);
        assert_eq!(sums[0].1, 4000.0);
        assert_eq!(sums[1].1, 2000.0);
        let rates = s.bin_rate_per_sec(SimDuration::from_secs(1));
        assert_eq!(rates[0].1, 4000.0);
    }

    #[test]
    fn bin_mean_handles_empty_bins() {
        let mut s = Series::default();
        s.push(SimTime::from_secs(0), 10.0);
        s.push(SimTime::from_secs(2), 20.0);
        let means = s.bin_mean(SimDuration::from_secs(1));
        assert_eq!(means.len(), 3);
        assert_eq!(means[0].1, 10.0);
        assert_eq!(means[1].1, 0.0);
        assert_eq!(means[2].1, 20.0);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::default();
        for i in 1..=100 {
            h.observe(i as f64);
        }
        assert_eq!(h.percentile(0.0), 1.0);
        assert_eq!(h.percentile(100.0), 100.0);
        assert!((h.median() - 50.0).abs() <= 1.0);
        assert_eq!(Histogram::default().percentile(50.0), 0.0);
    }

    #[test]
    fn recorder_counters_and_series() {
        let mut r = Recorder::new();
        r.inc("attach.success", 1.0);
        r.inc("attach.success", 1.0);
        assert_eq!(r.counter("attach.success"), 2.0);
        assert_eq!(r.counter("missing"), 0.0);
        r.record("tp", SimTime::ZERO, 5.0);
        assert_eq!(r.series("tp").unwrap().len(), 1);
        r.observe("lat", 3.0);
        assert_eq!(r.histogram("lat").unwrap().count(), 1);
    }

    #[test]
    fn series_mean_max() {
        let mut s = Series::default();
        s.push(SimTime::ZERO, 1.0);
        s.push(SimTime::from_secs(1), 3.0);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.max(), 3.0);
    }
}
