//! The simulation kernel: world construction, the run loop, and the [`Ctx`]
//! handle through which actors interact with the world.

use crate::actor::{Actor, ActorId, Event, Payload};
use crate::cpu::{self, HostId, HostSpec, HostState, Job, UtilizationReport};
use crate::event::{EventHandle, EventQueue, Scheduled};
use crate::eventd::{self, EventLog, Severity};
use crate::flow::{DelayClass, FlowKind, Role};
use crate::metrics::Recorder;
use crate::prof::{self, HeapStats, ProfHandle, Profiler, ProfileSnapshot, ScopeGuard};
use crate::racecheck::{self, RaceEvent, RaceExport, RaceObserver};
use crate::registry::Registry;
use crate::shardscope::{ShardScope, ShardSnapshot};
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceCtx, TraceSnapshot, Tracer};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

struct Slot {
    actor: Option<Box<dyn Actor>>,
    name: String,
}

enum PendingOp {
    Spawn(ActorId, Box<dyn Actor>),
    Replace(ActorId, Box<dyn Actor>),
    Kill(ActorId),
}

/// Mutable world state shared with actors through [`Ctx`]. Holds everything
/// except the actors themselves (so an actor can be mutably borrowed while
/// it manipulates the kernel).
pub struct Kernel {
    time: SimTime,
    queue: EventQueue,
    /// World seed; every actor derives its own RNG stream from it (see
    /// [`Ctx::rng`]), so draw sequences depend only on `(seed, actor)`,
    /// never on the order actors happen to be dispatched in.
    rng_seed: u64,
    rngs: Vec<SmallRng>,
    metrics: Recorder,
    registry: Registry,
    events: EventLog,
    hosts: Vec<HostState>,
    /// Per-actor generation; events captured under an older generation are
    /// dropped at dispatch. Bumped on crash/replace so a restarted service
    /// never sees stale in-flight messages.
    gens: Vec<u32>,
    next_actor_id: u32,
    pending: Vec<PendingOp>,
    log: Vec<(SimTime, String)>,
    verbose: bool,
    events_processed: u64,
    /// simprof accumulator, behind an `Rc` so scope guards can record on
    /// drop without borrowing the kernel. `prof_on` mirrors its enabled
    /// flag for a branch-only fast path on every dispatch.
    prof: ProfHandle,
    prof_on: bool,
    /// magma-trace accumulator. `trace_on` mirrors its enabled flag for
    /// a branch-only fast path on every scheduling call; `cur_trace` is
    /// the causal context of the dispatch currently being handled.
    tracer: Tracer,
    trace_on: bool,
    cur_trace: Option<TraceCtx>,
    /// shardscope accumulator. `shard_on` mirrors its enabled flag for a
    /// branch-only fast path on every dispatch and flow-edge send.
    shard: ShardScope,
    shard_on: bool,
    /// magma-racecheck digest observer, armed by
    /// [`World::enable_racecheck`]; `None` costs one branch per step.
    race: Option<RaceObserver>,
}

impl Kernel {
    /// Open a hop span under the current dispatch's trace context (if
    /// any) and return the context to stamp on the scheduled event.
    /// Only called behind the `trace_on` fast-path branch.
    fn trace_child(
        &mut self,
        kind: &'static str,
        src: ActorId,
        dst: ActorId,
    ) -> Option<TraceCtx> {
        let cur = self.cur_trace?;
        self.tracer.child(cur, kind, src, dst, self.time)
    }
}

/// The simulation world: a set of actors, hosts, and a deterministic event
/// queue, advanced in virtual time.
pub struct World {
    actors: Vec<Slot>,
    kernel: Kernel,
}

impl World {
    /// Create a world with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        World {
            actors: Vec::new(),
            kernel: Kernel {
                time: SimTime::ZERO,
                queue: EventQueue::new(),
                rng_seed: seed,
                rngs: Vec::new(),
                metrics: Recorder::new(),
                registry: Registry::new(),
                events: EventLog::default(),
                hosts: Vec::new(),
                gens: Vec::new(),
                next_actor_id: 0,
                pending: Vec::new(),
                log: Vec::new(),
                verbose: false,
                events_processed: 0,
                prof: Rc::new(RefCell::new(Profiler::default())),
                prof_on: false,
                tracer: Tracer::new(seed),
                trace_on: false,
                cur_trace: None,
                shard: ShardScope::default(),
                shard_on: false,
                race: None,
            },
        }
    }

    /// Enable in-memory event logging (debugging aid; off by default).
    pub fn set_verbose(&mut self, v: bool) {
        self.kernel.verbose = v;
    }

    /// Switch simprof on or off (off by default). Enabled, every
    /// dispatch is attributed to its `(actor, event-kind)` pair and
    /// `Ctx::profile_scope` guards record; disabled, both cost one
    /// boolean branch. Profiling only observes — it never feeds virtual
    /// time, so it cannot perturb a seeded run.
    pub fn enable_profiling(&mut self, on: bool) {
        self.kernel.prof.borrow_mut().set_enabled(on);
        self.kernel.prof_on = on;
    }

    pub fn profiling_enabled(&self) -> bool {
        self.kernel.prof_on
    }

    /// Switch magma-trace on or off (off by default). Enabled, every
    /// procedure rooted by [`Ctx::trace_start`] is recorded as a causal
    /// span tree across flow edges, the CPU model, and opted-in timers;
    /// disabled, every hook costs one boolean branch. Tracing only
    /// observes — it never feeds virtual time or the RNG, so it cannot
    /// perturb a seeded run.
    pub fn enable_tracing(&mut self, on: bool) {
        self.kernel.tracer.set_enabled(on);
        self.kernel.trace_on = on;
        if !on {
            self.kernel.cur_trace = None;
        }
    }

    pub fn tracing_enabled(&self) -> bool {
        debug_assert_eq!(self.kernel.trace_on, self.kernel.tracer.enabled());
        self.kernel.tracer.enabled()
    }

    /// Switch shardscope on or off (off by default). Enabled, every
    /// dispatch and vCPU charge is attributed to the shard-component
    /// instance of the target actor (see
    /// [`World::shard_assign`]) and cross-component flow-edge sends are
    /// recorded against the plan's cut edges; disabled, every hook
    /// costs one boolean branch. Shardscope only observes — it never
    /// feeds virtual time or the RNG, so it cannot perturb a seeded
    /// run.
    pub fn enable_shardscope(&mut self, on: bool) {
        self.kernel.shard.set_enabled(on);
        self.kernel.shard_on = on;
    }

    pub fn shardscope_enabled(&self) -> bool {
        self.kernel.shard_on
    }

    /// Assign an actor to instance `instance` of the shard-plan
    /// component owning flow-graph member `member` (dotted-ancestor
    /// resolution, same rules as the lint). Panics on a replicated hub
    /// (use [`shard_assign_hub`](World::shard_assign_hub)) or an
    /// unknown member: both are scenario wiring bugs.
    pub fn shard_assign(&mut self, id: ActorId, member: &str, instance: u32) {
        if let Err(e) = self.kernel.shard.assign(id, member, instance) {
            panic!("shard_assign: {e}");
        }
    }

    /// Assign a replicated-hub actor (e.g. a `net.stack`) to the
    /// component instance hosting it. Panics if `hub` is not in the
    /// plan's replicated list or `host_member` is unknown.
    pub fn shard_assign_hub(&mut self, id: ActorId, hub: &str, host_member: &str, instance: u32) {
        if let Err(e) = self.kernel.shard.assign_hub(id, hub, host_member, instance) {
            panic!("shard_assign_hub: {e}");
        }
    }

    /// Snapshot shardscope: per-component load, cut-edge telemetry,
    /// and the conservative-window model. Deterministic for a given
    /// `(scenario, seed)` — see `docs/PROFILING.md` § Shardscope.
    pub fn shard_snapshot(&self) -> ShardSnapshot {
        let names: Vec<&str> = self.actors.iter().map(|s| s.name.as_str()).collect();
        self.kernel.shard.snapshot(&names)
    }

    /// Arm magma-racecheck: fold a per-window state digest as the run
    /// executes (window = the shard plan's conservative lookahead,
    /// `scripts/golden/shard_plan.json`). `schedule = None` digests the
    /// canonical `(time, seq)` order; `Some(seed)` makes `run_until`
    /// drain each window's component sub-queues in a seed-permuted
    /// order instead. Heap peak-depth tracking switches to
    /// window-boundary sampling, which is schedule-independent. Arm
    /// before running; drive the full detector with
    /// [`racecheck::detect`] and [`World::race_export`].
    pub fn enable_racecheck(&mut self, schedule: Option<u64>) {
        self.kernel.shard.ensure_plan();
        let window_us = self.kernel.shard.window_us();
        self.kernel.race = Some(RaceObserver::new(window_us, schedule));
        self.kernel.queue.set_windowed_peak(true);
    }

    pub fn racecheck_enabled(&self) -> bool {
        self.kernel.race.is_some()
    }

    /// Record per-event detail for one digest window — the bisection
    /// re-run of [`racecheck::detect`]. No-op unless racecheck is armed.
    pub fn set_race_detail_window(&mut self, window: Option<u64>) {
        if let Some(ob) = self.kernel.race.as_mut() {
            ob.detail_window = window;
        }
    }

    /// Seal the trailing digest window, fold the final state digest
    /// (live resident-event multiset + registry snapshot hash + event
    /// count), and export the digest stream plus any detail records.
    /// Finalization is idempotent; panics if racecheck was never armed.
    pub fn race_export(&mut self) -> RaceExport {
        let pending = self.kernel.queue.len() as u64;
        let muts = self.kernel.registry.mutation_count();
        let resident = self.kernel.queue.resident_fold();
        let events = self.kernel.events_processed;
        let json = serde_json::to_string(&self.kernel.registry.snapshot())
            .expect("registry snapshot serializes");
        let rhash = racecheck::fnv_bytes(json.as_bytes());
        let ob = self.kernel.race.as_mut().expect("racecheck not enabled");
        ob.finalize(pending, muts, resident, events, rhash);
        let schedule_seed = ob.schedule_seed;
        let window_us = ob.window_us;
        let digests = ob.digests().to_vec();
        let records = ob.detail_records().to_vec();
        let detail = records
            .iter()
            .map(|r| RaceEvent {
                component: self
                    .kernel
                    .shard
                    .instance_of(r.target as usize)
                    .map(|i| self.kernel.shard.label(i))
                    .unwrap_or_else(|| "unassigned".to_string()),
                actor: self
                    .actors
                    .get(r.target as usize)
                    .map(|s| s.name.clone())
                    .unwrap_or_else(|| format!("actor#{}", r.target)),
                actor_id: r.target,
                kind: prof::KIND_NAMES[r.kind].to_string(),
                time_us: r.time_us,
                detail: r.detail,
                tie_break: r.seq,
            })
            .collect();
        RaceExport {
            schedule_seed,
            window_us,
            digests,
            detail,
        }
    }

    /// Head-sampling rate in [0, 1]: the deterministic seeded-hash
    /// fraction of rooted traces that record spans (default 1.0).
    pub fn set_trace_sample_rate(&mut self, rate: f64) {
        self.kernel.tracer.set_sample_rate(rate);
    }

    /// Snapshot every finished trace tree, the per-procedure
    /// critical-path aggregates, and the tracer counters. Deterministic
    /// for a given `(scenario, seed)` — see `docs/OBSERVABILITY.md`.
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        let names: Vec<&str> = self.actors.iter().map(|s| s.name.as_str()).collect();
        self.kernel.tracer.snapshot(&names)
    }

    /// Snapshot the profile accumulated so far: a deterministic
    /// `virtual` section and a wall-clock `host` section (see
    /// [`ProfileSnapshot`]). Meaningful only after
    /// [`enable_profiling`](World::enable_profiling); heap stats and
    /// `events_processed` are filled either way.
    pub fn profile(&self) -> ProfileSnapshot {
        let names: Vec<&str> = self.actors.iter().map(|s| s.name.as_str()).collect();
        self.kernel.prof.borrow().snapshot(
            &names,
            self.kernel.queue.stats(),
            self.kernel.events_processed,
        )
    }

    /// Event-heap statistics (always tracked, deterministic).
    pub fn heap_stats(&self) -> HeapStats {
        self.kernel.queue.stats()
    }

    /// Register a simulated host machine.
    pub fn add_host(&mut self, spec: HostSpec) -> HostId {
        let id = HostId(self.kernel.hosts.len() as u32);
        self.kernel.hosts.push(HostState::new(spec));
        id
    }

    /// Register an actor; its `Start` event fires at the current time.
    pub fn add_actor(&mut self, actor: Box<dyn Actor>) -> ActorId {
        let id = ActorId(self.kernel.next_actor_id);
        self.kernel.next_actor_id += 1;
        self.kernel.gens.push(0);
        let name = actor.name();
        self.actors.push(Slot {
            actor: Some(actor),
            name,
        });
        let g = self.kernel.gens[id.0 as usize];
        self.kernel.queue.push(self.kernel.time, id, g, Event::Start, None);
        id
    }

    /// Inject a message from "outside" the simulation (tests, harness).
    pub fn inject(&mut self, dst: ActorId, payload: Payload) {
        let g = self.kernel.gens[dst.0 as usize];
        self.kernel.queue.push(
            self.kernel.time,
            dst,
            g,
            Event::Msg { from: dst, payload },
            None,
        );
    }

    /// Crash an actor: its state is dropped and all in-flight events to it
    /// are invalidated. The slot stays allocated for a later
    /// [`restart`](World::restart).
    pub fn crash(&mut self, id: ActorId) {
        self.kernel.gens[id.0 as usize] += 1;
        self.actors[id.0 as usize].actor = None;
        let name = self.actors[id.0 as usize].name.clone();
        self.kernel.events.emit(
            self.kernel.time,
            &name,
            eventd::kind::SERVICE_CRASH,
            Severity::Critical,
            &[("service", name.clone())],
        );
    }

    /// Restart a crashed actor with a fresh instance (typically rebuilt
    /// from a checkpoint). Delivers `Start` at the current time.
    pub fn restart(&mut self, id: ActorId, actor: Box<dyn Actor>) {
        self.kernel.gens[id.0 as usize] += 1;
        let name = actor.name();
        self.actors[id.0 as usize] = Slot {
            actor: Some(actor),
            name: name.clone(),
        };
        let g = self.kernel.gens[id.0 as usize];
        self.kernel.queue.push(self.kernel.time, id, g, Event::Start, None);
        self.kernel.events.emit(
            self.kernel.time,
            &name,
            eventd::kind::SERVICE_RESTART,
            Severity::Warning,
            &[("service", name.clone())],
        );
    }

    /// Whether the actor is currently alive.
    pub fn is_alive(&self, id: ActorId) -> bool {
        self.actors
            .get(id.0 as usize)
            .map(|s| s.actor.is_some())
            .unwrap_or(false)
    }

    pub fn now(&self) -> SimTime {
        self.kernel.time
    }

    pub fn metrics(&self) -> &Recorder {
        &self.kernel.metrics
    }

    pub fn metrics_mut(&mut self) -> &mut Recorder {
        &mut self.kernel.metrics
    }

    /// The world-wide instrument registry ([`Registry`]): typed counters,
    /// gauges, and histograms, namespaced by service prefix.
    pub fn registry(&self) -> &Registry {
        &self.kernel.registry
    }

    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.kernel.registry
    }

    /// The world-wide structured-event log ([`EventLog`]): what the
    /// gateways' `eventd` ships alongside metric snapshots.
    pub fn events(&self) -> &EventLog {
        &self.kernel.events
    }

    pub fn events_mut(&mut self) -> &mut EventLog {
        &mut self.kernel.events
    }

    pub fn events_processed(&self) -> u64 {
        self.kernel.events_processed
    }

    /// Per-group CPU utilization report for a host.
    pub fn utilization(&self, host: HostId, group: &str) -> Option<UtilizationReport> {
        let h = self.kernel.hosts.get(host.0 as usize)?;
        let idx = h.group_index(group)? as usize;
        Some(cpu::build_report(h, idx, self.kernel.time))
    }

    /// Drain the debug log (only populated when verbose).
    pub fn take_log(&mut self) -> Vec<(SimTime, String)> {
        std::mem::take(&mut self.kernel.log)
    }

    /// Run until the event queue is exhausted or `deadline` is reached.
    /// The clock ends exactly at `deadline` even if the queue drains early.
    /// Under a permuted racecheck schedule this runs the windowed drain
    /// instead of the global `(time, seq)` order.
    pub fn run_until(&mut self, deadline: SimTime) {
        if self
            .kernel
            .race
            .as_ref()
            .is_some_and(|o| o.schedule_seed.is_some())
        {
            return self.run_until_permuted(deadline);
        }
        loop {
            match self.kernel.queue.peek_time() {
                Some(t) if t <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.kernel.time < deadline {
            self.kernel.time = deadline;
        }
    }

    /// Racecheck's permuted window schedule: drain events window by
    /// window (window = the shard plan's conservative lookahead),
    /// visiting shard-component sub-queues in a per-window permuted
    /// order instead of global `(time, seq)` order. Virtual time may
    /// regress *within* a window, never across windows; cut-edge
    /// lookahead guarantees cross-component effects land in strictly
    /// later windows, so a race-free scenario folds the exact digests
    /// the canonical schedule does.
    fn run_until_permuted(&mut self, deadline: SimTime) {
        let (window_us, seed) = {
            let ob = self.kernel.race.as_ref().expect("permuted run without observer");
            (ob.window_us, ob.schedule_seed.unwrap_or(0))
        };
        let deadline_us = deadline.as_micros();
        let mut deferred: Vec<Scheduled> = Vec::new();
        while let Some(t0) = self.kernel.queue.peek_time() {
            if t0 > deadline {
                break;
            }
            // Seal the previous window: every earlier window is fully
            // drained and nothing of this one dispatched — the same
            // observable point as the canonical pre-pop seal in `step`.
            let pending = self.kernel.queue.len() as u64;
            let muts = self.kernel.registry.mutation_count();
            if let Some(ob) = self.kernel.race.as_mut() {
                if ob.maybe_seal(t0.as_micros(), pending, muts) {
                    self.kernel.queue.sample_peak();
                }
            }
            let w = t0.as_micros() / window_us;
            // Exclusive end of the window, clipped so events exactly at
            // the deadline still run.
            let wend_us = ((w + 1) * window_us).min(deadline_us + 1);
            // Component 0 is the unassigned pseudo-component; shard
            // instance `i` drains as component `i + 1`.
            let ninst = self.kernel.shard.instance_count() + 1;
            let perm = racecheck::permutation(ninst, seed, w);
            // Multi-pass sweep: a dispatch may schedule same-window
            // work for a component earlier in the permutation (e.g.
            // zero-delay sends through unassigned actors), so keep
            // sweeping until a full pass dispatches nothing.
            loop {
                let mut dispatched = 0u64;
                for &ci in &perm {
                    loop {
                        match self.kernel.queue.peek_time() {
                            Some(t) if t.as_micros() < wend_us => {}
                            _ => break,
                        }
                        let sched = self.kernel.queue.pop().expect("peeked event vanished");
                        let c = self
                            .kernel
                            .shard
                            .instance_of(sched.target.0 as usize)
                            .map(|i| i as usize + 1)
                            .unwrap_or(0);
                        if c == ci {
                            dispatched += 1;
                            self.dispatch(sched, true);
                        } else {
                            deferred.push(sched);
                        }
                    }
                    for s in deferred.drain(..) {
                        self.kernel.queue.reinsert(s);
                    }
                }
                if dispatched == 0 {
                    break;
                }
            }
        }
        if self.kernel.time < deadline {
            self.kernel.time = deadline;
        }
    }

    /// Run for a duration from the current time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.kernel.time + d;
        self.run_until(deadline);
    }

    /// Run until the queue is fully drained (or `max` events, as a runaway
    /// guard). Returns the number of events processed.
    pub fn run_to_quiescence(&mut self, max: u64) -> u64 {
        let start = self.kernel.events_processed;
        while !self.kernel.queue.is_empty() {
            if self.kernel.events_processed - start >= max {
                break;
            }
            self.step();
        }
        self.kernel.events_processed - start
    }

    /// Process exactly one event. Returns false if the queue was empty.
    pub fn step(&mut self) -> bool {
        // Racecheck canonical mode: seal the digest window before
        // popping the first event past its boundary. `peek_time` has
        // physically flushed cancelled heads, so the resident
        // population here matches the permuted drain's post-window
        // state — the two seal points observe identical queues.
        if self.kernel.race.is_some() {
            if let Some(t) = self.kernel.queue.peek_time() {
                let pending = self.kernel.queue.len() as u64;
                let muts = self.kernel.registry.mutation_count();
                if let Some(ob) = self.kernel.race.as_mut() {
                    if ob.maybe_seal(t.as_micros(), pending, muts) {
                        self.kernel.queue.sample_peak();
                    }
                }
            }
        }
        let Some(sched) = self.kernel.queue.pop() else {
            return false;
        };
        self.dispatch(sched, false);
        true
    }

    /// Deliver one popped event: advance the clock, run bookkeeping and
    /// the target actor's handler, then apply deferred structural ops.
    /// `permuted` relaxes the monotonic-clock assertion — racecheck's
    /// windowed drain may legally regress time within a window.
    fn dispatch(&mut self, sched: Scheduled, permuted: bool) {
        debug_assert!(
            permuted || sched.time >= self.kernel.time,
            "time went backwards"
        );
        self.kernel.time = sched.time;
        self.kernel.events_processed += 1;
        if let Some(ob) = self.kernel.race.as_mut() {
            ob.record(sched.target, sched.time.as_micros(), &sched.event, sched.seq);
        }

        // magma-trace: close the in-flight hop span (its duration is the
        // schedule→delivery virtual time) and make its context current
        // for the dispatch below. One branch when tracing is disabled.
        if self.kernel.trace_on {
            self.kernel.cur_trace = sched
                .trace
                .map(|ctx| self.kernel.tracer.deliver(ctx, sched.time));
        }

        let event = sched.event;

        // CPU bookkeeping happens regardless of whether the owner is alive:
        // the core frees and the next queued job starts.
        if let Event::CpuDone {
            host,
            group,
            queued,
            ..
        } = &event
        {
            let (host, group, queued) = (*host, *group, *queued);
            let hs = &mut self.kernel.hosts[host.0 as usize];
            if let Some((job, done)) = cpu::complete(hs, group, sched.time) {
                let qd = sched.time.since(job.submitted);
                let trace = job.trace;
                self.kernel.queue.push(
                    done,
                    job.owner,
                    job.gen,
                    Event::CpuDone {
                        tag: job.tag,
                        payload: job.payload,
                        host,
                        group,
                        queued: qd,
                    },
                    trace,
                );
            }
            self.kernel
                .metrics
                .observe("sim.cpu.queue_delay_s", queued.as_secs_f64());
        }

        let idx = sched.target.0 as usize;
        if self
            .kernel
            .gens
            .get(idx)
            .map(|g| *g != sched.gen)
            .unwrap_or(true)
        {
            // Stale event for an earlier incarnation of the actor.
            return;
        }
        let Some(slot) = self.actors.get_mut(idx) else {
            return;
        };
        let Some(mut actor) = slot.actor.take() else {
            // Crashed / never existed: event is dropped.
            return;
        };

        // simprof attribution: one branch when disabled; when enabled,
        // stamp the (actor, kind) pair so vCPU submissions and scope
        // guards inside this dispatch charge to it, and time the handler.
        let prof_t0 = if self.kernel.prof_on {
            let kind = prof::kind_index(&event);
            self.kernel.prof.borrow_mut().dispatch_begin(idx, kind);
            Some((kind, prof::host_now()))
        } else {
            None
        };
        // shardscope attribution: the dispatch (and its vCPU charges)
        // belong to the target actor's shard-component instance.
        if self.kernel.shard_on {
            self.kernel
                .shard
                .dispatch_begin(idx, sched.time.as_micros());
        }
        {
            let mut ctx = Ctx {
                kernel: &mut self.kernel,
                self_id: sched.target,
            };
            actor.handle(&mut ctx, event);
        }
        if let Some((kind, t0)) = prof_t0 {
            let ns = t0.elapsed().as_nanos() as u64;
            self.kernel.prof.borrow_mut().dispatch_end(idx, kind, ns);
        }
        if self.kernel.shard_on {
            self.kernel.shard.dispatch_end();
        }
        // The actor may have been replaced/killed by itself (rare) — only
        // put it back if the slot is still empty.
        if self.actors[idx].actor.is_none() {
            self.actors[idx].actor = Some(actor);
        }

        // Apply deferred structural ops.
        let pending = std::mem::take(&mut self.kernel.pending);
        for op in pending {
            match op {
                PendingOp::Spawn(id, actor) => {
                    let name = actor.name();
                    debug_assert_eq!(id.0 as usize, self.actors.len());
                    self.actors.push(Slot {
                        actor: Some(actor),
                        name,
                    });
                    let g = self.kernel.gens[id.0 as usize];
        self.kernel.queue.push(self.kernel.time, id, g, Event::Start, None);
                }
                PendingOp::Replace(id, actor) => {
                    self.kernel.gens[id.0 as usize] += 1;
                    let name = actor.name();
                    self.actors[id.0 as usize] = Slot {
                        actor: Some(actor),
                        name,
                    };
                    let g = self.kernel.gens[id.0 as usize];
        self.kernel.queue.push(self.kernel.time, id, g, Event::Start, None);
                }
                PendingOp::Kill(id) => {
                    self.kernel.gens[id.0 as usize] += 1;
                    self.actors[id.0 as usize].actor = None;
                }
            }
        }
    }

    /// Name of an actor (for diagnostics).
    pub fn actor_name(&self, id: ActorId) -> &str {
        &self.actors[id.0 as usize].name
    }
}

/// Handle through which an actor affects the world while processing an
/// event: scheduling messages and timers, submitting CPU work, recording
/// metrics, and structural operations (spawn/crash).
pub struct Ctx<'a> {
    kernel: &'a mut Kernel,
    self_id: ActorId,
}

impl<'a> Ctx<'a> {
    pub fn now(&self) -> SimTime {
        self.kernel.time
    }

    pub fn id(&self) -> ActorId {
        self.self_id
    }

    /// Send a message delivered at the current instant (after all events
    /// already scheduled for this instant).
    pub fn send(&mut self, dst: ActorId, payload: Payload) {
        self.send_in(dst, SimDuration::ZERO, payload);
    }

    /// Send a message after a delay.
    pub fn send_in(&mut self, dst: ActorId, delay: SimDuration, payload: Payload) {
        let from = self.self_id;
        let g = self.kernel.gens[dst.0 as usize];
        self.kernel.queue.push(
            self.kernel.time + delay,
            dst,
            g,
            Event::Msg { from, payload },
            None,
        );
    }

    /// Schedule a flow-edge message carrying the dispatch's trace
    /// context (if tracing is on and a trace is active). `wire_bytes`
    /// is the on-the-wire size for shardscope cut-edge accounting
    /// (0 for edges with no physical wire representation).
    fn send_traced(
        &mut self,
        dst: ActorId,
        kind: &'static FlowKind,
        delay: SimDuration,
        payload: Payload,
        wire_bytes: usize,
    ) {
        let trace = if self.kernel.trace_on {
            self.kernel.trace_child(kind.name, self.self_id, dst)
        } else {
            None
        };
        if self.kernel.shard_on {
            self.kernel.shard.record_send(
                self.self_id,
                dst,
                kind.name,
                self.kernel.time.as_micros(),
                delay.as_micros(),
                wire_bytes,
            );
        }
        let from = self.self_id;
        let g = self.kernel.gens[dst.0 as usize];
        self.kernel.queue.push(
            self.kernel.time + delay,
            dst,
            g,
            Event::Msg { from, payload },
            trace,
        );
    }

    /// Send on a declared flow edge, delivered at the current instant.
    ///
    /// The thin statically-analyzable wrapper over [`send`](Ctx::send):
    /// `kind` must be a [`FlowKind`] const (see `docs/MESSAGE_FLOW.md`)
    /// whose class is `Zero` (a direct same-instant edge) or `Transport`
    /// (an end-to-end link edge whose first hop hands the payload to the
    /// local network stack at the same instant). A `Local` class here
    /// would misdeclare the edge — use [`send_self`](Ctx::send_self).
    pub fn send_to(&mut self, dst: ActorId, kind: &'static FlowKind, payload: Payload) {
        debug_assert!(
            matches!(kind.class, DelayClass::Zero | DelayClass::Transport),
            "send_to({}) delivers at the current instant; class {:?} needs send_to_in/send_self",
            kind.name,
            kind.class,
        );
        self.send_traced(dst, kind, SimDuration::ZERO, payload, 0);
    }

    /// Send on a declared flow edge after a positive delay (the
    /// link-latency leg of a `Transport` edge, e.g. stack-to-stack frame
    /// delivery). Zero-class kinds must use [`send_to`](Ctx::send_to) so
    /// the static zero-delay cycle analysis (lint F002) stays sound.
    pub fn send_to_in(
        &mut self,
        dst: ActorId,
        kind: &'static FlowKind,
        delay: SimDuration,
        payload: Payload,
    ) {
        debug_assert!(
            kind.class == DelayClass::Transport && delay > SimDuration::ZERO,
            "send_to_in({}) needs a Transport-class kind and a positive delay",
            kind.name,
        );
        self.send_traced(dst, kind, delay, payload, 0);
    }

    /// [`send_to_in`](Ctx::send_to_in) with a declared on-the-wire
    /// byte size, so shardscope can account cut-edge bytes (net stacks
    /// know the frame's wire size; plain `send_to_in` records 0).
    pub fn send_to_in_sized(
        &mut self,
        dst: ActorId,
        kind: &'static FlowKind,
        delay: SimDuration,
        payload: Payload,
        wire_bytes: usize,
    ) {
        debug_assert!(
            kind.class == DelayClass::Transport && delay > SimDuration::ZERO,
            "send_to_in_sized({}) needs a Transport-class kind and a positive delay",
            kind.name,
        );
        self.send_traced(dst, kind, delay, payload, wire_bytes);
    }

    /// Record a logical shard cut-edge occurrence: an RPC method
    /// (request, reply, or push) being encoded into a stream payload.
    /// Logical methods never cross shard components at the kernel —
    /// the carrying `net.frame`s do — so their counts/bytes are
    /// sampled here at the encode site instead. `method` must match a
    /// cut-edge kind in `scripts/golden/shard_plan.json`; unknown
    /// methods are ignored. One branch when shardscope is disabled.
    pub fn shard_logical(&mut self, method: &str, wire_bytes: usize) {
        if self.kernel.shard_on {
            self.kernel
                .shard
                .record_logical(method, self.kernel.time.as_micros(), wire_bytes);
        }
    }

    /// Arm a declared self-edge timer: a `Local`-class, `Timer`-role
    /// [`FlowKind`] with `sender == receiver` and a strictly positive
    /// delay — the livelock guard that keeps retry/timeout drivers out
    /// of the zero-delay graph. Fires as `Event::Timer { tag }` exactly
    /// like [`timer_in`](Ctx::timer_in).
    pub fn send_self(
        &mut self,
        kind: &'static FlowKind,
        delay: SimDuration,
        tag: u64,
    ) -> EventHandle {
        debug_assert!(
            kind.class == DelayClass::Local
                && kind.role == Role::Timer
                && kind.sender == kind.receiver
                && delay > SimDuration::ZERO,
            "send_self({}) must be a positive-delay Local/Timer self-edge",
            kind.name,
        );
        let trace = if self.kernel.trace_on {
            self.kernel.trace_child(kind.name, self.self_id, self.self_id)
        } else {
            None
        };
        let g = self.kernel.gens[self.self_id.0 as usize];
        self.kernel.queue.push(
            self.kernel.time + delay,
            self.self_id,
            g,
            Event::Timer { tag },
            trace,
        )
    }

    /// Arm a timer on this actor; fires as `Event::Timer { tag }`.
    /// Never carries trace context — re-arming a periodic tick inside a
    /// traced dispatch must not chain unrelated work into the trace. A
    /// timer that *is* a causal hop of the current procedure (e.g. the
    /// RAN's radio-delay leg) opts in via
    /// [`trace_timer_in`](Ctx::trace_timer_in).
    pub fn timer_in(&mut self, delay: SimDuration, tag: u64) -> EventHandle {
        let g = self.kernel.gens[self.self_id.0 as usize];
        self.kernel.queue.push(
            self.kernel.time + delay,
            self.self_id,
            g,
            Event::Timer { tag },
            None,
        )
    }

    /// [`timer_in`](Ctx::timer_in), but declared to be a causal hop of
    /// the procedure being traced: the timer's delay is recorded as a
    /// `"timer"` span and the trace context rides to the firing
    /// dispatch. Use for modeled legs expressed as raw timers (radio
    /// delay); periodic ticks must use plain `timer_in`.
    pub fn trace_timer_in(&mut self, delay: SimDuration, tag: u64) -> EventHandle {
        let trace = if self.kernel.trace_on {
            self.kernel.trace_child("timer", self.self_id, self.self_id)
        } else {
            None
        };
        let g = self.kernel.gens[self.self_id.0 as usize];
        self.kernel.queue.push(
            self.kernel.time + delay,
            self.self_id,
            g,
            Event::Timer { tag },
            trace,
        )
    }

    /// Root a new causal trace at this dispatch, labelled with the
    /// procedure name (`&'static str`, snake_case, listed as a
    /// `trace`-typed row in the `docs/OBSERVABILITY.md` inventory —
    /// magma-lint rule T007). Everything this dispatch subsequently
    /// schedules through flow edges, the CPU model, or
    /// [`trace_timer_in`](Ctx::trace_timer_in) joins the trace, hop by
    /// hop, until [`trace_finish`](Ctx::trace_finish). If a trace is
    /// already active (this procedure is a sub-step of a larger traced
    /// one, e.g. S6a auth inside an attach), the outer trace wins and
    /// keeps recording. One branch when tracing is disabled.
    pub fn trace_start(&mut self, label: &'static str) {
        if self.kernel.trace_on && self.kernel.cur_trace.is_none() {
            self.kernel.cur_trace =
                self.kernel
                    .tracer
                    .start(label, self.self_id, self.kernel.time);
        }
    }

    /// Mark the semantic completion of the current trace (if any): the
    /// critical path is the span chain from this dispatch back to the
    /// root, and end-to-end latency is now − root start. Clears the
    /// context, so later sends in this dispatch are untraced. Safe to
    /// call from untraced dispatches (one branch).
    pub fn trace_finish(&mut self) {
        if self.kernel.trace_on {
            if let Some(cur) = self.kernel.cur_trace.take() {
                self.kernel.tracer.finish(cur, self.kernel.time);
            }
        }
    }

    /// Finish the current trace only if it was rooted with `label`.
    /// Procedures that may run nested inside a larger traced one (S6a
    /// auth inside an attach, say) use this at their semantic end so
    /// the sub-step never terminates the enclosing trace — when nested,
    /// the outer trace keeps recording and this is a no-op.
    pub fn trace_finish_as(&mut self, label: &'static str) {
        if self.kernel.trace_on {
            if let Some(cur) = self.kernel.cur_trace {
                if self.kernel.tracer.label_of(cur.trace_id) == Some(label) {
                    self.kernel.cur_trace = None;
                    self.kernel.tracer.finish(cur, self.kernel.time);
                }
            }
        }
    }

    /// Whether the current dispatch is part of a sampled trace.
    pub fn trace_active(&self) -> bool {
        self.kernel.cur_trace.is_some()
    }

    /// Cancel a previously armed timer (or a pending send).
    pub fn cancel(&mut self, handle: EventHandle) {
        self.kernel.queue.cancel(handle);
    }

    /// Submit a CPU job on `host` in the named core group. When the job
    /// completes, `Event::CpuDone { tag, payload, .. }` is delivered back
    /// to this actor. Panics if the host/group does not exist: that is a
    /// wiring bug, not a runtime condition. Use [`try_exec`](Ctx::try_exec)
    /// to surface the misconfiguration as an error instead.
    pub fn exec(
        &mut self,
        host: HostId,
        group: &str,
        demand: SimDuration,
        tag: u64,
        payload: Payload,
    ) {
        if let Err(e) = self.try_exec(host, group, demand, tag, payload) {
            panic!("exec: {e}");
        }
    }

    /// Fallible variant of [`exec`](Ctx::exec): reports which host and
    /// core group were misconfigured (and what groups the host actually
    /// has) instead of aborting the simulation.
    pub fn try_exec(
        &mut self,
        host: HostId,
        group: &str,
        demand: SimDuration,
        tag: u64,
        payload: Payload,
    ) -> Result<(), ExecError> {
        // Resolve the host and group in a scoped borrow so the tracer
        // (another `&mut` path into the kernel) can run before submission.
        let (gidx, speed) = {
            let Some(hs) = self.kernel.hosts.get(host.0 as usize) else {
                return Err(ExecError {
                    host: format!("host#{}", host.0),
                    group: group.to_string(),
                    available: Vec::new(),
                });
            };
            let Some(gidx) = hs.group_index(group) else {
                return Err(ExecError {
                    host: hs.spec.name.clone(),
                    group: group.to_string(),
                    available: hs.spec.groups.iter().map(|g| g.name.clone()).collect(),
                });
            };
            (gidx, hs.groups[gidx as usize].spec.speed)
        };
        let service = cpu::scaled_service(demand, speed);
        if self.kernel.prof_on {
            // Charge virtual CPU-seconds to the dispatch that submitted
            // the job, once, at submission.
            self.kernel.prof.borrow_mut().charge_vcpu(service);
        }
        if self.kernel.shard_on {
            self.kernel.shard.charge_vcpu(service);
        }
        let gen = self.kernel.gens[self.self_id.0 as usize];
        // The CPU model is a causal hop: queue wait + service time of a
        // traced submission shows up as a `"cpu"` span.
        let trace = if self.kernel.trace_on {
            self.kernel.trace_child("cpu", self.self_id, self.self_id)
        } else {
            None
        };
        let job = Job {
            owner: self.self_id,
            gen,
            tag,
            payload,
            service,
            submitted: self.kernel.time,
            trace,
        };
        let hs = &mut self.kernel.hosts[host.0 as usize];
        if let Some((job, done)) = cpu::submit(hs, gidx, self.kernel.time, job) {
            let trace = job.trace;
            self.kernel.queue.push(
                done,
                self.self_id,
                gen,
                Event::CpuDone {
                    tag: job.tag,
                    payload: job.payload,
                    host,
                    group: gidx,
                    queued: SimDuration::ZERO,
                },
                trace,
            );
        }
        Ok(())
    }

    /// Open a simprof scope covering a sub-actor hot path (pipeline
    /// walk, RPC encode/decode, registry snapshot). The label must be a
    /// `&'static str` in dotted snake_case, listed in the
    /// `docs/OBSERVABILITY.md` inventory (magma-lint rule T006), and
    /// scopes must not nest. Returns an inert guard (one branch) when
    /// profiling is disabled.
    pub fn profile_scope(&mut self, label: &'static str) -> ScopeGuard {
        if self.kernel.prof_on {
            ScopeGuard::armed(self.kernel.prof.clone(), label)
        } else {
            ScopeGuard::inert()
        }
    }

    /// This actor's deterministic RNG stream, derived from the world
    /// seed and the actor id. Streams are per-actor (not shared) so the
    /// draw sequence an actor sees depends only on `(seed, actor)` and
    /// its own draw count — never on how dispatches from different
    /// actors interleave, which racecheck's permuted schedules reorder.
    pub fn rng(&mut self) -> &mut SmallRng {
        let idx = self.self_id.0 as usize;
        while self.kernel.rngs.len() <= idx {
            let id = self.kernel.rngs.len() as u64;
            let s = racecheck::splitmix64(
                self.kernel.rng_seed ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            self.kernel.rngs.push(SmallRng::seed_from_u64(s));
        }
        &mut self.kernel.rngs[idx]
    }

    /// Measurement sink.
    pub fn metrics(&mut self) -> &mut Recorder {
        &mut self.kernel.metrics
    }

    /// Typed instrument registry (counters / gauges / histograms).
    pub fn registry(&mut self) -> &mut Registry {
        &mut self.kernel.registry
    }

    /// Structured-event log shared by the world (the `eventd` ring).
    pub fn events(&mut self) -> &mut EventLog {
        &mut self.kernel.events
    }

    /// Emit a structured event stamped with the current sim time.
    /// `gateway` is the emitter's namespace prefix (`agw0`, `ran`),
    /// matching the metric naming convention — a gateway's `metricsd`
    /// ships only the events under its own prefix.
    pub fn emit_event(
        &mut self,
        gateway: &str,
        kind: &str,
        severity: Severity,
        fields: &[(&str, String)],
    ) -> u64 {
        let now = self.kernel.time;
        self.kernel.events.emit(now, gateway, kind, severity, fields)
    }

    /// Per-group CPU utilization report for a host, as of the current
    /// sim time (same data [`World::utilization`] exposes, but usable
    /// from inside an actor — this is what `metricsd` samples).
    pub fn utilization(&self, host: HostId, group: &str) -> Option<UtilizationReport> {
        let h = self.kernel.hosts.get(host.0 as usize)?;
        let idx = h.group_index(group)? as usize;
        Some(cpu::build_report(h, idx, self.kernel.time))
    }

    /// The core groups of a host as `(name, cores)`, in declaration
    /// order; empty if the host id is unknown.
    pub fn host_groups(&self, host: HostId) -> Vec<(String, u32)> {
        self.kernel
            .hosts
            .get(host.0 as usize)
            .map(|h| {
                h.spec
                    .groups
                    .iter()
                    .map(|g| (g.name.clone(), g.cores))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Append a debug log line (kept only in verbose mode).
    pub fn log(&mut self, msg: impl FnOnce() -> String) {
        if self.kernel.verbose {
            let m = msg();
            self.kernel.log.push((self.kernel.time, m));
        }
    }

    /// Spawn a new actor; `Start` is delivered at the current instant.
    /// Under shardscope the child inherits its spawner's shard
    /// component (the wildcard-receiver rule: dynamically created
    /// receivers live in their creator's shard).
    pub fn spawn(&mut self, actor: Box<dyn Actor>) -> ActorId {
        let id = ActorId(self.kernel.next_actor_id);
        self.kernel.next_actor_id += 1;
        self.kernel.gens.push(0);
        if self.kernel.shard_on {
            self.kernel.shard.inherit(self.self_id, id);
        }
        self.kernel.pending.push(PendingOp::Spawn(id, actor));
        id
    }

    /// Replace another actor with a fresh instance (restart).
    pub fn replace(&mut self, id: ActorId, actor: Box<dyn Actor>) {
        self.kernel.pending.push(PendingOp::Replace(id, actor));
    }

    /// Crash another actor: state dropped, in-flight events invalidated.
    pub fn kill(&mut self, id: ActorId) {
        self.kernel.pending.push(PendingOp::Kill(id));
    }
}

/// A CPU job was submitted against a host or core group that does not
/// exist — a scenario wiring bug. Reports which host and group were
/// named and which groups the host actually has.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// Name of the host (or `host#<id>` if the id itself is unknown).
    pub host: String,
    /// The core group that was requested.
    pub group: String,
    /// Core groups the host actually defines (empty for an unknown host).
    pub available: Vec<String>,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "host '{}' has no core group '{}' (available: {})",
            self.host,
            self.group,
            if self.available.is_empty() {
                "none".to_string()
            } else {
                self.available.join(", ")
            }
        )
    }
}

impl std::error::Error for ExecError {}
