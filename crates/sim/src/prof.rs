//! # simprof — kernel-level profiling attribution
//!
//! Answers the paper's core evaluation question — *which resource
//! saturates first* — for the simulator itself: every event dispatch and
//! every CPU-model execution is attributed to a `(actor, event-kind)`
//! pair, accumulating four columns:
//!
//! 1. **host wall-clock** spent inside `Actor::handle`,
//! 2. **virtual CPU-seconds** consumed on the modeled cores
//!    (charged at `Ctx::try_exec` submission, once per job),
//! 3. **dispatch count**, and
//! 4. **event-heap stats** (peak depth, total scheduled/cancelled —
//!    tracked unconditionally in the queue; see [`HeapStats`]).
//!
//! Sub-actor hot paths (`fluid_tick`, RPC encode/decode, registry
//! snapshots) are covered by cheap
//! [`Ctx::profile_scope`](crate::Ctx::profile_scope) guards: one
//! branch when profiling is
//! disabled, a scope-row update on drop when enabled.
//!
//! ## Determinism contract
//!
//! The profile is split **by construction** into a `virtual` section
//! (dispatch counts, virtual CPU-seconds, scope entry counts, heap
//! stats — all functions of the seed alone) and a `host` section (wall
//! clock, events/sec, peak RSS). Host-side clocks never feed back into
//! virtual time or any actor-visible state, so enabling the profiler
//! cannot perturb a run. Same-seed runs serialize byte-identical
//! `virtual` sections; `host` is explicitly excluded from byte-identity
//! comparisons.
//!
//! Profiling is **off by default** for library users; the testbed
//! scenario builder and `magma-bench` switch it on via
//! `World::enable_profiling`. Disabled, the kernel pays one boolean
//! branch per dispatch and per guard (see `BENCH` overhead mode in
//! `magma-bench`).

use crate::actor::Event;
use crate::registry::Registry;
use crate::time::SimDuration;
use serde::Serialize;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Instant;

/// Event kinds an actor can be dispatched with, in `Event` declaration
/// order. Index with `kind_index`.
pub const KIND_NAMES: [&str; 4] = ["start", "timer", "msg", "cpu_done"];

/// Dense kind index for attribution rows.
pub(crate) fn kind_index(ev: &Event) -> usize {
    match ev {
        Event::Start => 0,
        Event::Timer { .. } => 1,
        Event::Msg { .. } => 2,
        Event::CpuDone { .. } => 3,
    }
}

/// Host-side monotonic clock read. Lives here (and only here) so the
/// profiling clock is a single audited exemption: it measures real
/// elapsed time for the `host` profile section and never reaches
/// virtual time, actor state, or any deterministic export.
#[allow(clippy::disallowed_methods)]
pub fn host_now() -> Instant {
    Instant::now()
}

/// Wall-clock stopwatch for host-side phase timing (bench phases, run
/// loops). Kept in the kernel so non-kernel crates need no ambient
/// clock of their own.
#[derive(Debug, Clone, Copy)]
pub struct HostStopwatch {
    t0: Instant,
}

impl HostStopwatch {
    pub fn start() -> Self {
        HostStopwatch { t0: host_now() }
    }

    pub fn elapsed_s(&self) -> f64 {
        self.t0.elapsed().as_secs_f64()
    }

    pub fn elapsed_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }
}

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or 0 where unavailable. Host-section data only.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Event-heap statistics, maintained unconditionally by the event queue
/// (three integer ops per push/cancel — cheap and deterministic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct HeapStats {
    /// High-water mark of the heap length.
    pub peak_depth: u64,
    /// Total events ever scheduled.
    pub scheduled_total: u64,
    /// Total cancellations requested.
    pub cancelled_total: u64,
}

/// Accumulator cell for one `(actor, event-kind)` pair.
#[derive(Debug, Clone, Copy, Default)]
struct Cell {
    dispatches: u64,
    host_ns: u64,
    /// Host time spent inside `profile_scope` guards during these
    /// dispatches; self time = `host_ns - child_ns`.
    child_ns: u64,
    vcpu_us: u64,
}

/// Accumulator for one `profile_scope` label.
#[derive(Debug, Clone)]
struct ScopeCell {
    label: &'static str,
    count: u64,
    host_ns: u64,
}

/// The kernel-owned profiler. All mutation goes through the kernel's
/// `Rc<RefCell<Profiler>>` handle so scope guards can record on drop
/// without borrowing the kernel.
#[derive(Debug, Default)]
pub struct Profiler {
    enabled: bool,
    /// Indexed by actor id; one cell per event kind.
    rows: Vec<[Cell; 4]>,
    /// Linear by label: the label set is a handful of `&'static str`s.
    scopes: Vec<ScopeCell>,
    /// The `(actor, kind)` currently being dispatched, for vCPU and
    /// scope attribution.
    current: Option<(usize, usize)>,
    /// Virtual CPU-seconds submitted outside any dispatch (harness-side
    /// injections); a non-empty bucket here means attribution is
    /// incomplete, which the bench asserts against.
    unattributed_vcpu_us: u64,
}

/// Shared handle type the kernel stores and guards clone.
pub type ProfHandle = Rc<RefCell<Profiler>>;

impl Profiler {
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Mark the start of a dispatch (only called when enabled).
    pub(crate) fn dispatch_begin(&mut self, actor: usize, kind: usize) {
        if self.rows.len() <= actor {
            self.rows.resize(actor + 1, [Cell::default(); 4]);
        }
        self.current = Some((actor, kind));
    }

    /// Record a finished dispatch (only called when enabled).
    pub(crate) fn dispatch_end(&mut self, actor: usize, kind: usize, elapsed_ns: u64) {
        let cell = &mut self.rows[actor][kind];
        cell.dispatches += 1;
        cell.host_ns += elapsed_ns;
        self.current = None;
    }

    /// Charge a CPU-model job's service time to the dispatch that
    /// submitted it (only called when enabled).
    pub(crate) fn charge_vcpu(&mut self, service: SimDuration) {
        match self.current {
            Some((a, k)) => self.rows[a][k].vcpu_us += service.as_micros(),
            None => self.unattributed_vcpu_us += service.as_micros(),
        }
    }

    /// Record one closed `profile_scope` (only called when enabled).
    pub(crate) fn scope_record(&mut self, label: &'static str, elapsed_ns: u64) {
        if let Some((a, k)) = self.current {
            self.rows[a][k].child_ns += elapsed_ns;
        }
        match self.scopes.iter_mut().find(|s| s.label == label) {
            Some(s) => {
                s.count += 1;
                s.host_ns += elapsed_ns;
            }
            None => self.scopes.push(ScopeCell {
                label,
                count: 1,
                host_ns: elapsed_ns,
            }),
        }
    }

    /// Assemble the snapshot. Rows are aggregated by actor *name* so the
    /// output cardinality is bounded by the set of actor types, not the
    /// fleet size; ordering is lexicographic (deterministic).
    pub(crate) fn snapshot(
        &self,
        names: &[&str],
        heap: HeapStats,
        events_processed: u64,
    ) -> ProfileSnapshot {
        let mut by_name: BTreeMap<(String, usize), Cell> = BTreeMap::new();
        for (idx, kinds) in self.rows.iter().enumerate() {
            let name = names.get(idx).copied().unwrap_or("?");
            for (k, cell) in kinds.iter().enumerate() {
                if cell.dispatches == 0 && cell.vcpu_us == 0 {
                    continue;
                }
                let agg = by_name.entry((name.to_string(), k)).or_default();
                agg.dispatches += cell.dispatches;
                agg.host_ns += cell.host_ns;
                agg.child_ns += cell.child_ns;
                agg.vcpu_us += cell.vcpu_us;
            }
        }

        let mut virt_rows = Vec::with_capacity(by_name.len());
        let mut host_rows = Vec::with_capacity(by_name.len());
        let mut attributed_us = 0u64;
        let mut total_host_ns = 0u64;
        for ((name, k), cell) in &by_name {
            attributed_us += cell.vcpu_us;
            total_host_ns += cell.host_ns;
            virt_rows.push(VirtRow {
                actor: name.clone(),
                kind: KIND_NAMES[*k].to_string(),
                dispatches: cell.dispatches,
                vcpu_s: cell.vcpu_us as f64 / 1e6,
            });
            host_rows.push(HostRow {
                actor: name.clone(),
                kind: KIND_NAMES[*k].to_string(),
                wall_s: cell.host_ns as f64 / 1e9,
                self_wall_s: cell.host_ns.saturating_sub(cell.child_ns) as f64 / 1e9,
            });
        }

        let mut scopes = self.scopes.clone();
        scopes.sort_by_key(|s| s.label);
        let virt_scopes = scopes
            .iter()
            .map(|s| VirtScope {
                label: s.label.to_string(),
                count: s.count,
            })
            .collect();
        let host_scopes = scopes
            .iter()
            .map(|s| HostScope {
                label: s.label.to_string(),
                wall_s: s.host_ns as f64 / 1e9,
            })
            .collect();

        let wall_s = total_host_ns as f64 / 1e9;
        ProfileSnapshot {
            virt: VirtualProfile {
                enabled: self.enabled,
                events_processed,
                vcpu_attributed_s: attributed_us as f64 / 1e6,
                vcpu_total_s: (attributed_us + self.unattributed_vcpu_us) as f64 / 1e6,
                heap,
                rows: virt_rows,
                scopes: virt_scopes,
            },
            host: HostProfile {
                wall_s,
                events_per_sec: if wall_s > 0.0 {
                    events_processed as f64 / wall_s
                } else {
                    0.0
                },
                peak_rss_bytes: peak_rss_bytes(),
                rows: host_rows,
                scopes: host_scopes,
            },
        }
    }
}

/// RAII guard returned by `Ctx::profile_scope`. Inert (a `None`) when
/// profiling is disabled; otherwise records elapsed host time and one
/// deterministic entry count on drop. Guards must not be nested inside
/// one another — scope time also accumulates as the enclosing
/// dispatch's child time, and nesting would double-count it.
pub struct ScopeGuard {
    inner: Option<(ProfHandle, &'static str, Instant)>,
}

impl ScopeGuard {
    pub(crate) fn inert() -> Self {
        ScopeGuard { inner: None }
    }

    pub(crate) fn armed(prof: ProfHandle, label: &'static str) -> Self {
        ScopeGuard {
            inner: Some((prof, label, host_now())),
        }
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if let Some((prof, label, t0)) = self.inner.take() {
            let ns = t0.elapsed().as_nanos() as u64;
            prof.borrow_mut().scope_record(label, ns);
        }
    }
}

/// One `(actor, event-kind)` attribution row — deterministic columns.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct VirtRow {
    pub actor: String,
    pub kind: String,
    pub dispatches: u64,
    pub vcpu_s: f64,
}

/// One `(actor, event-kind)` attribution row — host columns.
#[derive(Debug, Clone, Serialize)]
pub struct HostRow {
    pub actor: String,
    pub kind: String,
    pub wall_s: f64,
    /// Wall time minus time spent under `profile_scope` guards.
    pub self_wall_s: f64,
}

/// One `profile_scope` row — deterministic columns.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct VirtScope {
    pub label: String,
    pub count: u64,
}

/// One `profile_scope` row — host columns.
#[derive(Debug, Clone, Serialize)]
pub struct HostScope {
    pub label: String,
    pub wall_s: f64,
}

/// Seed-determined profile columns. Serializes under the JSON key
/// `"virtual"`; byte-identical across same-seed runs.
#[derive(Debug, Clone, Serialize)]
pub struct VirtualProfile {
    pub enabled: bool,
    pub events_processed: u64,
    /// Virtual CPU-seconds charged to a named `(actor, kind)` row.
    pub vcpu_attributed_s: f64,
    /// All virtual CPU-seconds submitted (attributed + unattributed).
    pub vcpu_total_s: f64,
    pub heap: HeapStats,
    pub rows: Vec<VirtRow>,
    pub scopes: Vec<VirtScope>,
}

impl VirtualProfile {
    /// Fraction of virtual CPU-seconds attributed to a named row. A
    /// run that submitted no CPU work at all reports 0.0 — never NaN —
    /// so empty scenarios stay valid JSON and comparable.
    pub fn attribution_fraction(&self) -> f64 {
        if self.vcpu_total_s <= 0.0 {
            0.0
        } else {
            self.vcpu_attributed_s / self.vcpu_total_s
        }
    }
}

/// Host-side profile columns: wall clock, throughput, memory. Excluded
/// from byte-identity comparisons by construction.
#[derive(Debug, Clone, Serialize)]
pub struct HostProfile {
    /// Total wall time spent inside actor dispatch.
    pub wall_s: f64,
    /// Events dispatched per host second of dispatch time.
    pub events_per_sec: f64,
    pub peak_rss_bytes: u64,
    pub rows: Vec<HostRow>,
    pub scopes: Vec<HostScope>,
}

/// The full profile: a `virtual` section (deterministic) and a `host`
/// section (wall-clock), segregated by construction.
#[derive(Debug, Clone, Serialize)]
pub struct ProfileSnapshot {
    #[serde(rename = "virtual")]
    pub virt: VirtualProfile,
    pub host: HostProfile,
}

impl ProfileSnapshot {
    /// Export the deterministic profile aggregates into the registry so
    /// the standard export/golden-diff machinery audits them. Explicit —
    /// never called automatically — so enabling profiling alone does not
    /// perturb existing registry exports.
    pub fn observe_into(&self, reg: &mut Registry) {
        let dispatches: u64 = self.virt.rows.iter().map(|r| r.dispatches).sum();
        let scope_enters: u64 = self.virt.scopes.iter().map(|s| s.count).sum();
        reg.counter_add("sim.prof.dispatch_total", dispatches as f64);
        reg.counter_add("sim.prof.scope_enter_total", scope_enters as f64);
        reg.gauge_set("sim.prof.vcpu_attributed_s", self.virt.vcpu_attributed_s);
        reg.gauge_set("sim.prof.vcpu_total_s", self.virt.vcpu_total_s);
        reg.gauge_set("sim.prof.heap_peak_depth", self.virt.heap.peak_depth as f64);
        reg.counter_add(
            "sim.prof.heap_scheduled_total",
            self.virt.heap.scheduled_total as f64,
        );
        reg.counter_add(
            "sim.prof.heap_cancelled_total",
            self.virt.heap.cancelled_total as f64,
        );
    }

    /// Render the top-`n` rows by host self time as a fixed-width table:
    /// dispatch rows as `actor/kind`, scope rows as `scope:label`.
    pub fn top_table(&self, n: usize) -> String {
        struct Line {
            name: String,
            self_s: f64,
            total_s: f64,
            count: u64,
            vcpu_s: f64,
        }
        let mut lines: Vec<Line> = Vec::new();
        for (h, v) in self.host.rows.iter().zip(&self.virt.rows) {
            lines.push(Line {
                name: format!("{}/{}", h.actor, h.kind),
                self_s: h.self_wall_s,
                total_s: h.wall_s,
                count: v.dispatches,
                vcpu_s: v.vcpu_s,
            });
        }
        for (h, v) in self.host.scopes.iter().zip(&self.virt.scopes) {
            lines.push(Line {
                name: format!("scope:{}", h.label),
                self_s: h.wall_s,
                total_s: h.wall_s,
                count: v.count,
                vcpu_s: 0.0,
            });
        }
        lines.sort_by(|a, b| {
            b.self_s
                .partial_cmp(&a.self_s)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        let mut out = String::from(
            "row                                     self_s   total_s      count    vcpu_s\n",
        );
        for l in lines.iter().take(n) {
            out.push_str(&format!(
                "{:<38} {:>8.3} {:>9.3} {:>10} {:>9.3}\n",
                l.name, l.self_s, l.total_s, l.count, l.vcpu_s
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_rows_aggregate_by_actor_name() {
        let mut p = Profiler::default();
        p.set_enabled(true);
        // Two actors with the same name, one with another.
        p.dispatch_begin(0, 2);
        p.charge_vcpu(SimDuration::from_millis(10));
        p.dispatch_end(0, 2, 1_000);
        p.dispatch_begin(1, 2);
        p.charge_vcpu(SimDuration::from_millis(5));
        p.dispatch_end(1, 2, 2_000);
        p.dispatch_begin(2, 0);
        p.dispatch_end(2, 0, 500);
        let snap = p.snapshot(&["mme", "mme", "enb"], HeapStats::default(), 3);
        assert_eq!(snap.virt.rows.len(), 2);
        let mme = snap
            .virt
            .rows
            .iter()
            .find(|r| r.actor == "mme")
            .expect("mme row");
        assert_eq!(mme.dispatches, 2);
        assert_eq!(mme.kind, "msg");
        assert!((mme.vcpu_s - 0.015).abs() < 1e-12);
        assert!((snap.virt.attribution_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_reports_zero_fraction_not_nan() {
        let p = Profiler::default();
        let snap = p.snapshot(&[], HeapStats::default(), 0);
        assert_eq!(snap.virt.vcpu_total_s, 0.0);
        let frac = snap.virt.attribution_fraction();
        assert!(frac.is_finite());
        assert_eq!(frac, 0.0);
    }

    #[test]
    fn out_of_dispatch_vcpu_lands_in_unattributed() {
        let mut p = Profiler::default();
        p.set_enabled(true);
        p.charge_vcpu(SimDuration::from_millis(10));
        let snap = p.snapshot(&[], HeapStats::default(), 0);
        assert_eq!(snap.virt.vcpu_attributed_s, 0.0);
        assert!((snap.virt.vcpu_total_s - 0.01).abs() < 1e-12);
        assert!(snap.virt.attribution_fraction() < 1e-9);
    }

    #[test]
    fn scope_time_counts_as_child_of_enclosing_dispatch() {
        let mut p = Profiler::default();
        p.set_enabled(true);
        p.dispatch_begin(0, 1);
        p.scope_record("dataplane.fluid_tick", 400);
        p.dispatch_end(0, 1, 1_000);
        let snap = p.snapshot(&["agw"], HeapStats::default(), 1);
        assert_eq!(snap.virt.scopes.len(), 1);
        assert_eq!(snap.virt.scopes[0].count, 1);
        let row = &snap.host.rows[0];
        assert!((row.wall_s - 1e-6).abs() < 1e-15);
        assert!((row.self_wall_s - 0.6e-6).abs() < 1e-15);
        let table = snap.top_table(10);
        assert!(table.contains("agw/timer"));
        assert!(table.contains("scope:dataplane.fluid_tick"));
    }

    #[test]
    fn virtual_section_serializes_without_host_fields() {
        let p = Profiler::default();
        let snap = p.snapshot(&[], HeapStats::default(), 0);
        let virt = serde_json::to_string(&snap.virt).unwrap();
        for host_key in ["wall_s", "events_per_sec", "peak_rss_bytes"] {
            assert!(
                !virt.contains(host_key),
                "virtual section leaked host field {host_key}: {virt}"
            );
        }
        let whole = serde_json::to_string(&snap).unwrap();
        assert!(whole.contains("\"virtual\""));
        assert!(whole.contains("\"host\""));
    }
}
