//! The event queue at the heart of the simulator.
//!
//! Events are totally ordered by `(time, sequence)`: two events scheduled
//! for the same instant fire in the order they were scheduled, which keeps
//! runs bit-for-bit deterministic.

use crate::actor::{ActorId, Event};
use crate::prof::HeapStats;
use crate::time::SimTime;
use crate::trace::TraceCtx;
use std::cmp::Ordering;
#[allow(clippy::disallowed_types)]
// lint:allow(D001, reason = "cancellation set is insert/remove/contains only — never iterated, so hash order is unobservable")
use std::collections::{BinaryHeap, HashSet};

/// Opaque handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(pub(crate) u64);

pub(crate) struct Scheduled {
    pub time: SimTime,
    pub seq: u64,
    pub target: ActorId,
    /// Generation of the target actor at schedule time; stale events
    /// (target restarted since) are dropped at dispatch.
    pub gen: u32,
    pub event: Event,
    /// Causal trace context stamped by the sender's dispatch (None for
    /// untraced events and whenever tracing is off).
    pub trace: Option<TraceCtx>,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest event first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic priority queue of simulation events.
#[allow(clippy::disallowed_types)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
    // lint:allow(D001, reason = "membership checks on the dispatch hot path; never iterated")
    cancelled: HashSet<u64>,
    /// Always-on heap statistics for simprof: three integer ops per
    /// push/cancel, deterministic by construction.
    stats: HeapStats,
    /// Cancelled events still physically resident in the heap. Lets
    /// `sample_peak` report live depth, which is a pure function of the
    /// event set — unlike raw `heap.len()`, which depends on when
    /// cancelled entries happen to be skipped past.
    cancel_outstanding: u64,
    /// Racecheck mode: the per-push high-water mark depends on intra-
    /// window dispatch order, so windowed runs disable it and sample
    /// live depth at window boundaries instead (schedule-independent).
    windowed_peak: bool,
}

impl EventQueue {
    #[allow(clippy::disallowed_types)]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            // lint:allow(D001, reason = "see the field declaration — membership-only set")
            cancelled: HashSet::new(),
            stats: HeapStats::default(),
            cancel_outstanding: 0,
            windowed_peak: false,
        }
    }

    /// Switch the peak-depth statistic from per-push tracking to
    /// window-boundary sampling (see `racecheck`).
    pub fn set_windowed_peak(&mut self, on: bool) {
        self.windowed_peak = on;
    }

    pub fn push(
        &mut self,
        time: SimTime,
        target: ActorId,
        gen: u32,
        event: Event,
        trace: Option<TraceCtx>,
    ) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            time,
            seq,
            target,
            gen,
            event,
            trace,
        });
        self.stats.scheduled_total += 1;
        if !self.windowed_peak {
            self.stats.peak_depth = self.stats.peak_depth.max(self.heap.len() as u64);
        }
        EventHandle(seq)
    }

    /// Re-insert an event that was popped but not dispatched (the
    /// permuted window drain defers other components' events). Keeps
    /// the original sequence number — FIFO order within a component is
    /// preserved — and touches no statistics.
    pub fn reinsert(&mut self, sched: Scheduled) {
        self.heap.push(sched);
    }

    pub fn cancel(&mut self, handle: EventHandle) {
        self.cancelled.insert(handle.0);
        self.stats.cancelled_total += 1;
        self.cancel_outstanding += 1;
    }

    /// Heap statistics accumulated since construction.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Sample the live heap depth (resident minus cancelled-but-
    /// unremoved) into the peak statistic. Called at window boundaries
    /// in racecheck mode; the live depth at a causally-closed boundary
    /// is a function of the event set alone, not the drain order.
    pub fn sample_peak(&mut self) {
        let len = self.heap.len() as u64;
        let live = len - len.min(self.cancel_outstanding);
        self.stats.peak_depth = self.stats.peak_depth.max(live);
    }

    /// Pop the next non-cancelled event.
    pub fn pop(&mut self) -> Option<Scheduled> {
        while let Some(ev) = self.heap.pop() {
            if self.cancelled.remove(&ev.seq) {
                self.cancel_outstanding = self.cancel_outstanding.saturating_sub(1);
                continue;
            }
            return Some(ev);
        }
        None
    }

    /// Time of the next non-cancelled event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let seq = self.heap.peek()?.seq;
            if self.cancelled.contains(&seq) {
                self.cancelled.remove(&seq);
                self.cancel_outstanding = self.cancel_outstanding.saturating_sub(1);
                self.heap.pop();
                continue;
            }
            return Some(self.heap.peek().unwrap().time);
        }
    }

    /// Commutative fold over the live (non-cancelled) resident events:
    /// `(sum, xor, count)` of each event's content hash. Heap iteration
    /// order is arbitrary, but the fold is order-invariant, so the
    /// result is a pure function of the resident event multiset.
    pub fn resident_fold(&self) -> (u64, u64, u64) {
        let (mut sum, mut xor, mut count) = (0u64, 0u64, 0u64);
        for ev in self.heap.iter() {
            if self.cancelled.contains(&ev.seq) {
                continue;
            }
            let h = crate::racecheck::event_hash(ev.target, ev.time.as_micros(), &ev.event);
            sum = sum.wrapping_add(h);
            xor ^= h;
            count += 1;
        }
        (sum, xor, count)
    }

    /// Number of scheduled (possibly cancelled) events; used by tests
    /// and diagnostics.
    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::Event;

    fn ev() -> Event {
        Event::Start
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), ActorId(0), 0, ev(), None);
        q.push(SimTime::from_secs(1), ActorId(1), 0, ev(), None);
        q.push(SimTime::from_secs(2), ActorId(2), 0, ev(), None);
        assert_eq!(q.pop().unwrap().target, ActorId(1));
        assert_eq!(q.pop().unwrap().target, ActorId(2));
        assert_eq!(q.pop().unwrap().target, ActorId(0));
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_time_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.push(t, ActorId(i), 0, ev(), None);
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap().target, ActorId(i));
        }
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let h = q.push(SimTime::from_secs(1), ActorId(0), 0, ev(), None);
        q.push(SimTime::from_secs(2), ActorId(1), 0, ev(), None);
        q.cancel(h);
        assert_eq!(q.pop().unwrap().target, ActorId(1));
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.push(SimTime::from_secs(1), ActorId(0), 0, ev(), None);
        q.push(SimTime::from_secs(5), ActorId(1), 0, ev(), None);
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
    }
}
