//! Declarative message-flow kinds: the statically-analyzable layer over
//! the kernel's raw `send`/`send_in`/`timer_in` primitives.
//!
//! Every production actor-to-actor edge is declared once as a
//! [`FlowKind`] const — a struct literal whose fields (`name`, `sender`,
//! `receiver`, `class`, `role`, `retry`) are all compile-time literals —
//! and every actor declares the kinds it handles with the
//! [`flow_dispatch!`] macro. Because both are plain const items,
//! `magma-lint` can extract the full directed graph of
//! `(sender, kind, receiver, delay class)` edges *lexically*, without a
//! type checker, and prove properties the sharded DES engine will rely
//! on: which edges are zero-delay (must stay on one shard), which cross
//! a modeled link (candidate shard cuts), which requests carry a retry
//! edge, and which receivers document their same-timestamp tie-break.
//! See `docs/MESSAGE_FLOW.md` (generated) and `docs/DETERMINISM.md`
//! (rules F001–F006).
//!
//! The runtime side is deliberately thin: [`Ctx::send_to`],
//! [`Ctx::send_to_in`], and [`Ctx::send_self`](crate::Ctx::send_self)
//! are pass-throughs to the raw primitives plus debug assertions that
//! keep the declared delay class honest against what the kernel actually
//! schedules — so the static graph is sound, not aspirational.
//!
//! [`Ctx::send_to`]: crate::Ctx::send_to
//! [`Ctx::send_to_in`]: crate::Ctx::send_to_in
//! [`flow_dispatch!`]: crate::flow_dispatch

/// Delay class of a flow edge — what the sharded engine needs to know
/// about an edge's relationship to virtual time.
///
/// - `Zero` edges deliver at the sending instant. They can never cross a
///   conservative shard time-window, so sender and receiver must live on
///   the same shard.
/// - `Local` edges are positive-delay self-edges (timers driving
///   retries/timeouts); they never leave the actor.
/// - `Transport` edges cross a modeled network link with positive,
///   link-dependent latency — the candidate shard-cut edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DelayClass {
    /// Same-instant delivery (virtual time does not advance).
    Zero,
    /// Positive-delay self-edge (timer).
    Local,
    /// Crosses a modeled link; positive latency.
    Transport,
}

impl DelayClass {
    pub fn as_str(&self) -> &'static str {
        match self {
            DelayClass::Zero => "zero",
            DelayClass::Local => "local",
            DelayClass::Transport => "transport",
        }
    }
}

/// Protocol role of a flow kind.
///
/// The role feeds two static rules: `Request` kinds must name a retry
/// edge (lint F004), and `Response` kinds are excluded from zero-delay
/// cycle detection (lint F002) because a response is demand-bounded —
/// one per request — and therefore cannot amplify into a same-timestamp
/// livelock loop on its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Role {
    /// One-way data / notification edge.
    Data,
    /// Expects a response; must declare `retry: Some("<timer kind>")`.
    Request,
    /// The bounded answer to a `Request` (or to a hub command).
    Response,
    /// A positive-delay self-edge driving retries/timeouts.
    Timer,
}

impl Role {
    pub fn as_str(&self) -> &'static str {
        match self {
            Role::Data => "data",
            Role::Request => "request",
            Role::Response => "response",
            Role::Timer => "timer",
        }
    }
}

/// One declared class of messages: a directed edge in the message-flow
/// graph. Declare as a `pub const` struct literal so `magma-lint` can
/// read every field without type analysis:
///
/// ```
/// use magma_sim::{DelayClass, FlowKind, Role};
///
/// pub const FLUID_DEMAND: FlowKind = FlowKind {
///     name: "ran.fluid_demand",
///     sender: "ran",
///     receiver: "agw",
///     class: DelayClass::Zero,
///     role: Role::Data,
///     retry: None,
///     lookahead: None,
/// };
/// ```
///
/// `sender`/`receiver` are *logical* actor names (`agw`, `orc8r`,
/// `ran.enb`, …). A name is a dotted hierarchy: a kind whose receiver is
/// `ran` may be dispatched by `ran.enb` and `ran.wifi`; `"*"` means "any
/// actor" (hub edges). A kind may describe an end-to-end edge (class
/// `Transport`) even when the first physical hop hands the payload to
/// the local network stack at the same instant.
#[derive(Debug)]
pub struct FlowKind {
    /// Stable dotted identifier; for RPC request kinds this doubles as
    /// the wire method string.
    pub name: &'static str,
    /// Logical sending actor (dotted hierarchy, `"*"` = any).
    pub sender: &'static str,
    /// Logical receiving actor (dotted hierarchy, `"*"` = any).
    pub receiver: &'static str,
    pub class: DelayClass,
    pub role: Role,
    /// For `Request` kinds: the `name` of the `Timer`-role kind (same
    /// sender) whose firing drives this request's timeout/retry path.
    pub retry: Option<&'static str>,
    /// For `Transport` kinds: the `magma_net::LinkProfile` preset whose
    /// static one-way latency lower-bounds this edge (`"lan"`, `"fiber"`,
    /// `"loopback"`, …). This is the edge's conservative *lookahead*
    /// bound — the window a sharded engine may advance a downstream
    /// shard without waiting for the upstream one. `None` for `Zero` and
    /// `Local` kinds; lint rule S002 cross-checks the named profile
    /// against `crates/net/src/link.rs` and requires positive latency.
    pub lookahead: Option<&'static str>,
}

/// An actor's declared dispatch surface: which kinds it handles, and the
/// key by which same-timestamp deliveries from distinct senders commute
/// (or an explicit statement that kernel FIFO order is relied upon — in
/// which case the inbound edges are un-shardable and `MESSAGE_FLOW.md`
/// marks them as same-shard constraints). Produced by
/// [`flow_dispatch!`](crate::flow_dispatch).
#[derive(Debug)]
pub struct Dispatch {
    /// Logical actor name (dotted hierarchy).
    pub actor: &'static str,
    /// The Rust struct implementing this actor's state (`"AgwActor"`,
    /// `"NetStack"`, …). Lint rules S003/S004 use the binding to audit
    /// the struct's fields for shard-movability: an `Rc`/`RefCell`
    /// handle in actor state is only legal when its declared alias set
    /// ([`AliasDecl`]) keeps every holder on one shard component.
    pub state: &'static str,
    /// Every kind this actor has a handling arm for.
    pub accepts: &'static [&'static FlowKind],
    /// Deterministic tie-break contract for same-timestamp deliveries
    /// from two or more distinct senders (lint F003). `None` is only
    /// acceptable while at most one sender can target the actor.
    pub tie_break: Option<&'static str>,
}

/// How an [`AliasDecl`]'s holders relate to shard components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AliasScope {
    /// One shared instance; every declared holder must land in the same
    /// shard component (zero-delay union), or the handle would be
    /// mutated from two shards (lint S001).
    SameComponent,
    /// One instance *per* shard component: every holder must be a
    /// per-component replicated actor, and the constructor must not be
    /// called outside the declaring crate — construction is scoped
    /// through a component-aware facade (e.g. `magma_net::NetFabric`).
    PerComponent,
}

impl AliasScope {
    pub fn as_str(&self) -> &'static str {
        match self {
            AliasScope::SameComponent => "same-component",
            AliasScope::PerComponent => "per-component",
        }
    }
}

/// A declared shared-mutable-state alias set: which logical actors may
/// hold a given `Rc<RefCell<..>>` handle type, and how the sharded
/// engine must scope its instances. Declare as a `pub const` struct
/// literal next to the handle's `pub type` alias so `magma-lint` can
/// read every field lexically (rules S001/S003):
///
/// ```
/// use magma_sim::{AliasDecl, AliasScope};
///
/// pub const TOPOLOGY_ALIAS: AliasDecl = AliasDecl {
///     handle: "NetHandle",
///     ctor: "new_net",
///     holders: &["net.stack"],
///     scope: AliasScope::PerComponent,
///     reason: "per-site topology domain; stacks of one site share it",
/// };
/// ```
#[derive(Debug)]
pub struct AliasDecl {
    /// The `pub type` handle alias this declaration covers.
    pub handle: &'static str,
    /// The constructor fn returning a fresh handle.
    pub ctor: &'static str,
    /// Logical actor names (dotted hierarchy) permitted to hold the
    /// handle in their state struct.
    pub holders: &'static [&'static str],
    pub scope: AliasScope,
    /// Why the sharing is sound — surfaced in `docs/SHARD_PLAN.md`.
    pub reason: &'static str,
}

/// A declared co-location constraint: actors that must share a shard
/// even though no zero-delay edge connects them (e.g. daemons sharing
/// one host's network-stack instance). Feeds the shard-component
/// union-find alongside the zero-delay edges (lint S001/S005).
#[derive(Debug)]
pub struct Colocate {
    /// Logical actor names pinned to one shard component.
    pub actors: &'static [&'static str],
    /// Why they are inseparable — surfaced in `docs/SHARD_PLAN.md`.
    pub reason: &'static str,
}

/// Declare an actor's dispatch surface as a `pub const` [`Dispatch`].
///
/// The accepts list holds *paths* to [`FlowKind`] consts, so a typo'd
/// kind is a compile error — while the invocation stays a flat literal
/// block that `magma-lint` parses lexically:
///
/// ```
/// # use magma_sim::flow_dispatch;
/// # pub mod flows {
/// #     use magma_sim::{DelayClass, FlowKind, Role};
/// #     pub const FLUID_DEMAND: FlowKind = FlowKind {
/// #         name: "ran.fluid_demand", sender: "ran", receiver: "agw",
/// #         class: DelayClass::Zero, role: Role::Data, retry: None,
/// #         lookahead: None,
/// #     };
/// # }
/// flow_dispatch! {
///     pub const AGW_DISPATCH: actor = "agw",
///     state = "AgwActor",
///     accepts = [flows::FLUID_DEMAND],
///     tie_break = Some("teid (per-tunnel state; cross-tunnel commutes)"),
/// }
/// ```
#[macro_export]
macro_rules! flow_dispatch {
    (
        $(#[$meta:meta])*
        $vis:vis const $name:ident: actor = $actor:literal,
        state = $state:literal,
        accepts = [ $($kind:path),* $(,)? ],
        tie_break = $tb:expr $(,)?
    ) => {
        $(#[$meta])*
        $vis const $name: $crate::flow::Dispatch = $crate::flow::Dispatch {
            actor: $actor,
            state: $state,
            accepts: &[ $( & $kind ),* ],
            tie_break: $tb,
        };
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    pub const PING: FlowKind = FlowKind {
        name: "test.ping",
        sender: "a",
        receiver: "b",
        class: DelayClass::Zero,
        role: Role::Data,
        retry: None,
        lookahead: None,
    };

    flow_dispatch! {
        const B_DISPATCH: actor = "b",
        state = "BActor",
        accepts = [PING],
        tie_break = None,
    }

    const B_ALIAS: AliasDecl = AliasDecl {
        handle: "BHandle",
        ctor: "new_b",
        holders: &["b"],
        scope: AliasScope::SameComponent,
        reason: "test alias",
    };

    const B_COLOCATE: Colocate = Colocate {
        actors: &["a", "b"],
        reason: "test colocation",
    };

    #[test]
    fn dispatch_macro_expands_to_const_literals() {
        assert_eq!(B_DISPATCH.actor, "b");
        assert_eq!(B_DISPATCH.state, "BActor");
        assert_eq!(B_DISPATCH.accepts.len(), 1);
        assert_eq!(B_DISPATCH.accepts[0].name, "test.ping");
        assert_eq!(B_DISPATCH.accepts[0].class, DelayClass::Zero);
        assert!(B_DISPATCH.accepts[0].lookahead.is_none());
        assert!(B_DISPATCH.tie_break.is_none());
        assert_eq!(PING.class.as_str(), "zero");
        assert_eq!(PING.role.as_str(), "data");
    }

    #[test]
    fn alias_and_colocate_are_plain_literals() {
        assert_eq!(B_ALIAS.handle, "BHandle");
        assert_eq!(B_ALIAS.scope.as_str(), "same-component");
        assert_eq!(AliasScope::PerComponent.as_str(), "per-component");
        assert_eq!(B_COLOCATE.actors, &["a", "b"]);
        assert!(!B_ALIAS.reason.is_empty() && !B_COLOCATE.reason.is_empty());
    }
}
