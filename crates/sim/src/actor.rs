//! Actors: event-driven state machines hosted by the simulation [`World`].
//!
//! Every service in the reproduced system — an MME, an eNodeB, the
//! orchestrator's config service, a UE fleet — is an [`Actor`]: a state
//! machine that receives [`Event`]s and reacts by updating state and
//! scheduling further events through the [`Ctx`] handle. This mirrors the
//! "event-driven, poll-based" style of production network stacks (smoltcp,
//! OVS): no async runtime, no hidden concurrency, fully deterministic.
//!
//! [`World`]: crate::engine::World
//! [`Ctx`]: crate::engine::Ctx

use crate::cpu::HostId;
use std::any::Any;
use std::fmt;

/// Identifies an actor within a [`World`](crate::engine::World).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub u32);

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

/// Message payload: any `'static` value, downcast by the receiver.
///
/// Cross-crate actors exchange their own strongly-typed messages; the
/// simulator core stays agnostic of them.
pub type Payload = Box<dyn Any>;

/// An event delivered to an actor.
pub enum Event {
    /// Delivered once when the actor is started (or restarted after a
    /// crash). Actors arm their initial timers here.
    Start,
    /// A timer armed via [`Ctx::timer_in`](crate::engine::Ctx::timer_in)
    /// fired. The `tag` is the caller-chosen discriminator.
    Timer { tag: u64 },
    /// A message from another actor (possibly itself).
    Msg { from: ActorId, payload: Payload },
    /// A CPU job submitted via [`Ctx::exec`](crate::engine::Ctx::exec)
    /// finished executing. `queued` is how long the job waited for a core.
    CpuDone {
        tag: u64,
        payload: Payload,
        host: HostId,
        group: u32,
        queued: crate::time::SimDuration,
    },
}

impl fmt::Debug for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Start => write!(f, "Start"),
            Event::Timer { tag } => write!(f, "Timer({tag})"),
            Event::Msg { from, .. } => write!(f, "Msg(from={from})"),
            Event::CpuDone { tag, queued, .. } => {
                write!(f, "CpuDone(tag={tag}, queued={queued})")
            }
        }
    }
}

/// An event-driven simulation participant.
pub trait Actor {
    /// React to one event. All side effects flow through `ctx`.
    fn handle(&mut self, ctx: &mut crate::engine::Ctx<'_>, event: Event);

    /// Human-readable name used in logs and panics.
    fn name(&self) -> String {
        "actor".to_string()
    }
}

/// Convenience: downcast a payload to a concrete message type, panicking
/// with a useful message if the sender and receiver disagree on the type.
pub fn downcast<T: 'static>(payload: Payload, receiver: &str) -> T {
    match payload.downcast::<T>() {
        Ok(b) => *b,
        Err(_) => panic!(
            "{receiver}: unexpected message type (wanted {})",
            std::any::type_name::<T>()
        ),
    }
}

/// Convenience: try to downcast, returning the payload back on mismatch.
pub fn try_downcast<T: 'static>(payload: Payload) -> Result<T, Payload> {
    payload.downcast::<T>().map(|b| *b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downcast_roundtrip() {
        let p: Payload = Box::new(42u32);
        assert_eq!(downcast::<u32>(p, "test"), 42);
    }

    #[test]
    fn try_downcast_mismatch_returns_payload() {
        let p: Payload = Box::new("hello".to_string());
        let back = try_downcast::<u32>(p).unwrap_err();
        assert_eq!(downcast::<String>(back, "test"), "hello");
    }

    #[test]
    #[should_panic(expected = "unexpected message type")]
    fn downcast_mismatch_panics() {
        let p: Payload = Box::new(1u8);
        downcast::<u64>(p, "test");
    }
}
