//! CPU model: hosts with core groups, FIFO job queues, and busy-time
//! accounting.
//!
//! The paper's evaluation hinges on *which resource saturates first*: the
//! RAN, the AGW's control plane (MME attach pipeline), or its user plane
//! (packet forwarding). We model a host as one or more **core groups**
//! (e.g., "cp" and "up" when statically pinned, or a single "all" group for
//! the flexible kernel-scheduler configuration of Figures 7/8). Each group
//! runs jobs FIFO across `cores` identical cores; a core's speed scales the
//! job's nominal demand.
//!
//! Utilization is tracked by integrating busy-core time into fixed-width
//! buckets, which is what Figure 5's CPU% time series plots.

use crate::actor::ActorId;
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Identifies a simulated host machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

/// Description of one schedulable group of cores on a host.
#[derive(Debug, Clone)]
pub struct CoreGroupSpec {
    /// Name used to look the group up (e.g. `"cp"`, `"up"`, `"all"`).
    pub name: String,
    /// Number of identical cores in the group.
    pub cores: u32,
    /// Speed factor relative to the reference core. A job with nominal
    /// demand `d` occupies a core for `d / speed`.
    pub speed: f64,
}

/// Description of a host: a named machine with one or more core groups.
#[derive(Debug, Clone)]
pub struct HostSpec {
    pub name: String,
    pub groups: Vec<CoreGroupSpec>,
    /// Width of utilization-accounting buckets.
    pub util_bucket: SimDuration,
}

impl HostSpec {
    /// A host with a single core group named `"all"`.
    pub fn uniform(name: &str, cores: u32, speed: f64) -> Self {
        HostSpec {
            name: name.to_string(),
            groups: vec![CoreGroupSpec {
                name: "all".to_string(),
                cores,
                speed,
            }],
            util_bucket: SimDuration::from_secs(1),
        }
    }

    /// A host with separate control-plane and user-plane core groups, the
    /// statically-pinned configuration from Figures 7/8.
    pub fn pinned(name: &str, cp_cores: u32, up_cores: u32, speed: f64) -> Self {
        HostSpec {
            name: name.to_string(),
            groups: vec![
                CoreGroupSpec {
                    name: "cp".to_string(),
                    cores: cp_cores,
                    speed,
                },
                CoreGroupSpec {
                    name: "up".to_string(),
                    cores: up_cores,
                    speed,
                },
            ],
            util_bucket: SimDuration::from_secs(1),
        }
    }

    pub fn with_util_bucket(mut self, bucket: SimDuration) -> Self {
        self.util_bucket = bucket;
        self
    }
}

pub(crate) struct Job {
    pub owner: ActorId,
    /// Generation of the owner at submit time.
    pub gen: u32,
    pub tag: u64,
    pub payload: crate::actor::Payload,
    /// Remaining wall time on a core (already divided by speed).
    pub service: SimDuration,
    pub submitted: SimTime,
    /// Causal trace context of the submitting dispatch, so CPU queue
    /// wait + service shows up as a hop of the submitting procedure.
    pub trace: Option<crate::trace::TraceCtx>,
}

pub(crate) struct GroupState {
    pub spec: CoreGroupSpec,
    pub busy: u32,
    pub queue: VecDeque<Job>,
    /// Busy-core-microseconds integrated per bucket.
    pub busy_buckets: Vec<f64>,
    pub last_change: SimTime,
    pub jobs_completed: u64,
    pub total_busy: SimDuration,
    pub max_queue_depth: usize,
}

impl GroupState {
    fn new(spec: CoreGroupSpec) -> Self {
        GroupState {
            spec,
            busy: 0,
            queue: VecDeque::new(),
            busy_buckets: Vec::new(),
            last_change: SimTime::ZERO,
            jobs_completed: 0,
            total_busy: SimDuration::ZERO,
            max_queue_depth: 0,
        }
    }

    /// Integrate busy time from `last_change` to `now` into buckets.
    fn account(&mut self, now: SimTime, bucket: SimDuration) {
        if now <= self.last_change || self.busy == 0 {
            self.last_change = now;
            return;
        }
        let bw = bucket.as_micros().max(1);
        let mut t = self.last_change.as_micros();
        let end = now.as_micros();
        let busy = self.busy as f64;
        self.total_busy += SimDuration(((end - t) as f64 * busy) as u64);
        while t < end {
            let idx = (t / bw) as usize;
            let bucket_end = (idx as u64 + 1) * bw;
            let span = bucket_end.min(end) - t;
            if self.busy_buckets.len() <= idx {
                self.busy_buckets.resize(idx + 1, 0.0);
            }
            self.busy_buckets[idx] += span as f64 * busy;
            t += span;
        }
        self.last_change = now;
    }
}

pub(crate) struct HostState {
    pub spec: HostSpec,
    pub groups: Vec<GroupState>,
}

impl HostState {
    pub fn new(spec: HostSpec) -> Self {
        let groups = spec.groups.iter().cloned().map(GroupState::new).collect();
        HostState { spec, groups }
    }

    pub fn group_index(&self, name: &str) -> Option<u32> {
        self.groups
            .iter()
            .position(|g| g.spec.name == name)
            .map(|i| i as u32)
    }
}

/// A snapshot of per-group utilization, produced for reporting.
#[derive(Debug, Clone)]
pub struct UtilizationReport {
    pub host: String,
    pub group: String,
    pub cores: u32,
    /// `(bucket_start, utilization_fraction)` pairs; utilization is over
    /// all cores in the group (1.0 == every core busy the whole bucket).
    pub series: Vec<(SimTime, f64)>,
    pub jobs_completed: u64,
    pub total_busy: SimDuration,
    pub max_queue_depth: usize,
}

impl UtilizationReport {
    /// Mean utilization across the series.
    pub fn mean(&self) -> f64 {
        if self.series.is_empty() {
            return 0.0;
        }
        self.series.iter().map(|(_, u)| *u).sum::<f64>() / self.series.len() as f64
    }

    /// Peak bucket utilization.
    pub fn peak(&self) -> f64 {
        self.series.iter().map(|(_, u)| *u).fold(0.0, f64::max)
    }
}

pub(crate) fn build_report(
    host: &HostState,
    group_idx: usize,
    until: SimTime,
) -> UtilizationReport {
    let g = &host.groups[group_idx];
    let bw = host.spec.util_bucket.as_micros().max(1);
    let denom = bw as f64 * g.spec.cores.max(1) as f64;
    let n_buckets = (until.as_micros() / bw) as usize + 1;
    let mut series = Vec::with_capacity(n_buckets);
    for i in 0..n_buckets {
        let v = g.busy_buckets.get(i).copied().unwrap_or(0.0);
        series.push((SimTime(i as u64 * bw), v / denom));
    }
    UtilizationReport {
        host: host.spec.name.clone(),
        group: g.spec.name.clone(),
        cores: g.spec.cores,
        series,
        jobs_completed: g.jobs_completed,
        total_busy: g.total_busy,
        max_queue_depth: g.max_queue_depth,
    }
}

pub(crate) use accounting::*;

mod accounting {
    use super::*;

    /// Called by the kernel when a job is submitted. If a core was free the
    /// job starts immediately and is handed back with its completion time;
    /// otherwise it is queued inside the group.
    pub fn submit(host: &mut HostState, group: u32, now: SimTime, job: Job) -> Option<(Job, SimTime)> {
        let bucket = host.spec.util_bucket;
        let g = &mut host.groups[group as usize];
        g.account(now, bucket);
        if g.busy < g.spec.cores {
            g.busy += 1;
            let done = now + job_service(&job);
            Some((job, done))
        } else {
            g.queue.push_back(job);
            g.max_queue_depth = g.max_queue_depth.max(g.queue.len());
            None
        }
    }

    /// Called by the kernel when a running job completes. Returns the next
    /// job to start (with its completion time), if any were queued.
    pub fn complete(host: &mut HostState, group: u32, now: SimTime) -> Option<(Job, SimTime)> {
        let bucket = host.spec.util_bucket;
        let g = &mut host.groups[group as usize];
        g.account(now, bucket);
        g.jobs_completed += 1;
        if let Some(job) = g.queue.pop_front() {
            // The freed core immediately picks up the next queued job;
            // busy count is unchanged.
            let done = now + job_service(&job);
            Some((job, done))
        } else {
            g.busy = g.busy.saturating_sub(1);
            None
        }
    }

    fn job_service(job: &Job) -> SimDuration {
        job.service
    }
}

/// Convert a nominal demand into wall time on a core of the given speed.
pub(crate) fn scaled_service(demand: SimDuration, speed: f64) -> SimDuration {
    if speed <= 0.0 {
        return demand;
    }
    SimDuration::from_secs_f64(demand.as_secs_f64() / speed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> HostSpec {
        HostSpec::uniform("h", 2, 1.0)
    }

    fn job(service_ms: u64) -> Job {
        Job {
            owner: ActorId(0),
            gen: 0,
            tag: 0,
            payload: Box::new(()),
            service: SimDuration::from_millis(service_ms),
            submitted: SimTime::ZERO,
            trace: None,
        }
    }

    #[test]
    fn jobs_run_immediately_when_core_free() {
        let mut h = HostState::new(spec());
        let done = submit(&mut h, 0, SimTime::ZERO, job(100)).map(|(_, d)| d);
        assert_eq!(done, Some(SimTime::from_millis(100)));
        let done2 = submit(&mut h, 0, SimTime::ZERO, job(100)).map(|(_, d)| d);
        assert_eq!(done2, Some(SimTime::from_millis(100)));
        // Third job queues: both cores busy.
        let done3 = submit(&mut h, 0, SimTime::ZERO, job(100));
        assert!(done3.is_none());
        assert_eq!(h.groups[0].queue.len(), 1);
    }

    #[test]
    fn completion_starts_queued_job() {
        let mut h = HostState::new(HostSpec::uniform("h", 1, 1.0));
        assert!(submit(&mut h, 0, SimTime::ZERO, job(100)).is_some());
        assert!(submit(&mut h, 0, SimTime::ZERO, job(50)).is_none());
        let next = complete(&mut h, 0, SimTime::from_millis(100));
        let (j, done) = next.unwrap();
        assert_eq!(j.service, SimDuration::from_millis(50));
        assert_eq!(done, SimTime::from_millis(150));
        // Queue drained; completing again frees the core.
        assert!(complete(&mut h, 0, SimTime::from_millis(150)).is_none());
        assert_eq!(h.groups[0].busy, 0);
    }

    #[test]
    fn utilization_integrates_busy_time() {
        let mut h = HostState::new(HostSpec::uniform("h", 1, 1.0));
        assert!(submit(&mut h, 0, SimTime::ZERO, job(500)).is_some());
        assert!(complete(&mut h, 0, SimTime::from_millis(500)).is_none());
        let rep = build_report(&h, 0, SimTime::from_secs(1));
        // 500ms busy in a 1s bucket on 1 core => 0.5 utilization.
        assert!((rep.series[0].1 - 0.5).abs() < 1e-9);
        assert_eq!(rep.jobs_completed, 1);
    }

    #[test]
    fn utilization_spans_buckets() {
        let mut h = HostState::new(HostSpec::uniform("h", 1, 1.0));
        assert!(submit(&mut h, 0, SimTime::from_millis(500), job(1000)).is_some());
        assert!(complete(&mut h, 0, SimTime::from_millis(1500)).is_none());
        let rep = build_report(&h, 0, SimTime::from_secs(2));
        assert!((rep.series[0].1 - 0.5).abs() < 1e-9);
        assert!((rep.series[1].1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn speed_scales_service_time() {
        assert_eq!(
            scaled_service(SimDuration::from_millis(100), 2.0),
            SimDuration::from_millis(50)
        );
        assert_eq!(
            scaled_service(SimDuration::from_millis(100), 0.0),
            SimDuration::from_millis(100)
        );
    }

    #[test]
    fn pinned_spec_has_two_groups() {
        let h = HostState::new(HostSpec::pinned("agw", 3, 5, 1.6));
        assert_eq!(h.group_index("cp"), Some(0));
        assert_eq!(h.group_index("up"), Some(1));
        assert_eq!(h.groups[1].spec.cores, 5);
    }
}
