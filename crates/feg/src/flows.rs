//! Message-flow contract for federation: the Diameter S6a exchange
//! between the FeG and the partner MNO's core.
//!
//! The AGW↔FeG RPC kinds (`FEG_AUTH`, `FEG_REPLY`) live in
//! `magma_orc8r::proto::flows` — that crate is the shared RPC contract
//! both agw and feg depend on. What's declared here is the southbound
//! Diameter leg, visible only to the FeG and the simulated MNO core.

use magma_sim::flow_dispatch;
use magma_sim::{DelayClass, FlowKind, Role};

/// Proxied S6a request (AIR/ULR): FeG → MNO HSS over the Diameter
/// stream. Outstanding requests are expired by the FeG's S6a tick, which
/// answers the waiting AGW with an error so its own RPC retry kicks in.
pub const FEG_S6A_REQUEST: FlowKind = FlowKind {
    name: "feg.s6a_request",
    sender: "feg",
    receiver: "feg.mno",
    class: DelayClass::Transport,
    role: Role::Request,
    retry: Some("feg.s6a_tick"),
    lookahead: Some("fiber"),
};

/// S6a answer (AIA/ULA): MNO HSS → FeG, matched by hop-by-hop id.
pub const MNO_S6A_ANSWER: FlowKind = FlowKind {
    name: "feg.mno.s6a_answer",
    sender: "feg.mno",
    receiver: "feg",
    class: DelayClass::Transport,
    role: Role::Response,
    retry: None,
    lookahead: Some("fiber"),
};

/// The FeG's S6a expiry tick: sweeps pending proxies that the MNO never
/// answered (armed only while requests are outstanding).
pub const FEG_S6A_TICK: FlowKind = FlowKind {
    name: "feg.s6a_tick",
    sender: "feg",
    receiver: "feg",
    class: DelayClass::Local,
    role: Role::Timer,
    retry: None,
    lookahead: None,
};

flow_dispatch! {
    /// FeG ingress: socket events (both the server side toward AGWs and
    /// the Diameter client toward the MNO), the federated-auth RPC, S6a
    /// answers, and the expiry tick. Per-call state is keyed by
    /// hop-by-hop id / RPC call id, so same-timestamp events commute.
    pub const FEG_DISPATCH: actor = "feg",
    state = "FegActor",
    accepts = [
        magma_net::flows::SOCK_EVENT,
        magma_orc8r::proto::flows::FEG_AUTH,
        MNO_S6A_ANSWER,
        FEG_S6A_TICK,
    ],
    tie_break = Some("peer connection + hop-by-hop id / rpc call id; per-call state is disjoint"),
}

flow_dispatch! {
    /// MNO core ingress: socket events and proxied S6a requests. The HSS
    /// is stateless per request apart from the location registry, which
    /// is keyed by IMSI.
    pub const MNO_DISPATCH: actor = "feg.mno",
    state = "MnoCoreActor",
    accepts = [
        magma_net::flows::SOCK_EVENT,
        FEG_S6A_REQUEST,
    ],
    tie_break = Some("stream handle / hop-by-hop id (per-IMSI registry rows are independent)"),
}
