//! # magma-feg — federation with external MNO cores (§3.6)
//!
//! Magma deploys in three modes: standalone, local-breakout roaming, and
//! home roaming. The [`FegActor`] terminates Magma's internal RPC on one
//! side and 3GPP Diameter (S6a) toward an external operator's HSS on the
//! other; the [`GtpAggregator`] is the centralized user-plane
//! interconnect for home routing. [`MnoCoreActor`] simulates the partner
//! MNO's core so federation paths can be exercised end to end.

pub mod feg;
pub mod flows;
pub mod gtpa;
pub mod mno;

pub use feg::FegActor;
pub use gtpa::{scaling_comparison, GtpAggregator, GtpaParams, GtpaTick};
pub use mno::MnoCoreActor;
