//! The Federation Gateway: terminates Magma's internal RPC on one side
//! and 3GPP Diameter toward the MNO core on the other (§3.6).
//!
//! Unlike AGWs, the FeG is a centralized element: traditional MNOs
//! require a single point of interconnection with "extension" networks.
//! All AGWs' federation traffic funnels through it.

use magma_net::{lp_encode, ports, Endpoint, LpFramer, SockCmd, SockEvent, StreamHandle};
use magma_orc8r::proto::{self as proto, FegAuthRequest, FegAuthResponse, FegVector};
use magma_rpc::{RpcServer, RpcServerEvent};
use crate::flows;
use magma_sim::{downcast, Actor, ActorId, Ctx, Event, SimDuration, SimTime};
use magma_wire::diameter::{DiameterPacket, ResultCode, S6aMessage};
use magma_wire::Imsi;
use serde_json::json;
use std::collections::BTreeMap;

/// A pending proxied request: the AGW-side RPC to answer when the MNO
/// responds.
struct PendingProxy {
    conn: StreamHandle,
    rpc_id: u64,
    /// When the proxy was sent; swept by the S6a expiry tick.
    at: SimTime,
}

const T_S6A: u64 = 1;
/// How long an S6a request may stay unanswered before the FeG gives up
/// and errors the waiting AGW (whose own RPC retry then kicks in).
const S6A_TIMEOUT: SimDuration = SimDuration(10_000_000); // 10s
const S6A_TICK: SimDuration = SimDuration(3_000_000); // 3s

/// The FeG actor.
pub struct FegActor {
    stack: ActorId,
    server: RpcServer,
    mno: Endpoint,
    mno_conn: Option<StreamHandle>,
    mno_framer: LpFramer,
    next_hbh: u32,
    pending: BTreeMap<u32, PendingProxy>,
    tick_armed: bool,
    /// Requests queued while the Diameter connection establishes.
    queued: Vec<(StreamHandle, u64, DiameterPacket)>,
    pub proxied: u64,
}

impl FegActor {
    pub fn new(stack: ActorId, mno: Endpoint) -> Self {
        FegActor {
            stack,
            server: RpcServer::new(stack, ports::FEG),
            mno,
            mno_conn: None,
            mno_framer: LpFramer::new(),
            next_hbh: 1,
            pending: BTreeMap::new(),
            tick_armed: false,
            queued: Vec::new(),
            proxied: 0,
        }
    }

    fn open_mno(&mut self, ctx: &mut Ctx<'_>) {
        let me = ctx.id();
        ctx.send_to(
            self.stack,
            &magma_net::flows::SOCK_CMD,
            Box::new(SockCmd::OpenStream {
                peer: self.mno,
                owner: me,
                user: 77,
            }),
        );
    }

    fn send_diameter(&mut self, ctx: &mut Ctx<'_>, pkt: &DiameterPacket) {
        if let Some(conn) = self.mno_conn {
            ctx.send_to(
                self.stack,
                &flows::FEG_S6A_REQUEST,
                Box::new(SockCmd::StreamSend {
                    handle: conn,
                    bytes: lp_encode(&pkt.encode()),
                }),
            );
        }
    }

    fn proxy(&mut self, ctx: &mut Ctx<'_>, conn: StreamHandle, rpc_id: u64, msg: S6aMessage) {
        let hbh = self.next_hbh;
        self.next_hbh += 1;
        let pkt = DiameterPacket {
            hop_by_hop: hbh,
            end_to_end: hbh,
            message: msg,
        };
        let at = ctx.now();
        self.pending.insert(hbh, PendingProxy { conn, rpc_id, at });
        self.proxied += 1;
        if !self.tick_armed {
            self.tick_armed = true;
            ctx.send_self(&flows::FEG_S6A_TICK, S6A_TICK, T_S6A);
        }
        if self.mno_conn.is_some() {
            self.send_diameter(ctx, &pkt);
        } else {
            self.queued.push((conn, rpc_id, pkt));
        }
    }

    fn handle_request(
        &mut self,
        ctx: &mut Ctx<'_>,
        conn: StreamHandle,
        id: u64,
        method: String,
        body: serde_json::Value,
    ) {
        match method.as_str() {
            proto::methods::FEG_AUTH => {
                let Ok(req) = serde_json::from_value::<FegAuthRequest>(body) else {
                    self.server.reply_err(ctx, conn, id, &proto::flows::FEG_REPLY, "bad feg auth request");
                    return;
                };
                self.proxy(
                    ctx,
                    conn,
                    id,
                    S6aMessage::AuthInfoRequest {
                        imsi: Imsi(req.imsi),
                        num_vectors: 1,
                    },
                );
            }
            proto::methods::FEG_UPDATE_LOCATION => {
                let Ok(req) = serde_json::from_value::<proto::FegLocationRequest>(body) else {
                    self.server.reply_err(ctx, conn, id, &proto::flows::FEG_REPLY, "bad feg location request");
                    return;
                };
                // Serving-node id derived from the gateway id hash.
                let node = req.agw_id.bytes().map(|b| b as u32).sum::<u32>();
                self.proxy(
                    ctx,
                    conn,
                    id,
                    S6aMessage::UpdateLocationRequest {
                        imsi: Imsi(req.imsi),
                        serving_node: node,
                    },
                );
            }
            other => self
                .server
                .reply_err(ctx, conn, id, &proto::flows::FEG_REPLY, &format!("unknown method {other}")),
        }
    }

    fn handle_diameter_answer(&mut self, ctx: &mut Ctx<'_>, pkt: DiameterPacket) {
        let Some(p) = self.pending.remove(&pkt.hop_by_hop) else {
            return;
        };
        match pkt.message {
            S6aMessage::AuthInfoAnswer { result, vectors } => {
                if result == ResultCode::Success {
                    let resp = FegAuthResponse {
                        vectors: vectors
                            .into_iter()
                            .map(|v| FegVector {
                                rand: v.rand,
                                autn: v.autn,
                                xres: v.xres,
                                kasme: v.kasme,
                            })
                            .collect(),
                    };
                    self.server.reply(ctx, p.conn, p.rpc_id, &proto::flows::FEG_REPLY, json!(resp));
                } else {
                    self.server
                        .reply_err(ctx, p.conn, p.rpc_id, &proto::flows::FEG_REPLY, "subscriber unknown at MNO");
                }
            }
            S6aMessage::UpdateLocationAnswer {
                result,
                ambr_dl_kbps,
                ambr_ul_kbps,
            } => {
                let resp = proto::FegLocationResponse {
                    ok: result == ResultCode::Success,
                    ambr_dl_kbps,
                    ambr_ul_kbps,
                };
                self.server.reply(ctx, p.conn, p.rpc_id, &proto::flows::FEG_REPLY, json!(resp));
            }
            _ => {
                self.server.reply_err(ctx, p.conn, p.rpc_id, &proto::flows::FEG_REPLY, "unexpected answer");
            }
        }
    }
}

impl Actor for FegActor {
    fn handle(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Start => {
                self.server.listen(ctx);
                self.open_mno(ctx);
            }
            Event::Msg { payload, .. } => {
                let ev = downcast::<SockEvent>(payload, "feg");
                // Diameter client connection events first.
                match ev {
                    SockEvent::StreamOpened { handle, user: 77, .. } => {
                        self.mno_conn = Some(handle);
                        let queued = std::mem::take(&mut self.queued);
                        for (_conn, _id, pkt) in queued {
                            self.send_diameter(ctx, &pkt);
                        }
                    }
                    SockEvent::StreamRecv { handle, bytes }
                        if Some(handle) == self.mno_conn =>
                    {
                        let msgs = self.mno_framer.push(&bytes);
                        for m in msgs {
                            if let Ok(pkt) = DiameterPacket::decode(&m) {
                                self.handle_diameter_answer(ctx, pkt);
                            }
                        }
                    }
                    SockEvent::StreamClosed { handle, .. }
                        if Some(handle) == self.mno_conn =>
                    {
                        self.mno_conn = None;
                        self.mno_framer = LpFramer::new();
                        // Fail all pending proxies: the AGWs will retry.
                        let pending = std::mem::take(&mut self.pending);
                        for (_, p) in pending {
                            self.server
                                .reply_err(ctx, p.conn, p.rpc_id, &proto::flows::FEG_REPLY, "mno unreachable");
                        }
                        self.open_mno(ctx);
                    }
                    other => {
                        if let Ok(events) = self.server.try_handle(ctx, other) {
                            for e in events {
                                if let RpcServerEvent::Request {
                                    conn,
                                    id,
                                    method,
                                    body,
                                } = e
                                {
                                    self.handle_request(ctx, conn, id, method, body);
                                }
                            }
                        }
                    }
                }
            }
            Event::Timer { tag: T_S6A } => {
                let now = ctx.now();
                let stale: Vec<u32> = self
                    .pending
                    .iter()
                    .filter(|(_, p)| now.since(p.at) >= S6A_TIMEOUT)
                    .map(|(hbh, _)| *hbh)
                    .collect();
                for hbh in stale {
                    if let Some(p) = self.pending.remove(&hbh) {
                        self.server
                            .reply_err(ctx, p.conn, p.rpc_id, &proto::flows::FEG_REPLY, "mno timeout");
                    }
                }
                if self.pending.is_empty() {
                    self.tick_armed = false;
                } else {
                    ctx.send_self(&flows::FEG_S6A_TICK, S6A_TICK, T_S6A);
                }
            }
            Event::Timer { .. } | Event::CpuDone { .. } => {}
        }
    }

    fn name(&self) -> String {
        "feg".to_string()
    }
}
