//! Simulated MNO core: the external operator network Magma federates
//! with (§3.6). Hosts an HSS speaking Diameter S6a and tracks serving-
//! node registrations.

use magma_net::{lp_encode, ports, LpFramer, SockCmd, SockEvent, StreamHandle};
use crate::flows;
use magma_sim::{downcast, Actor, ActorId, Ctx, Event};
use magma_subscriber::SubscriberDb;
use magma_wire::aka::Rand;
use magma_wire::diameter::{DiameterPacket, ResultCode, S6aMessage, WireAuthVector};
use magma_wire::Imsi;
use rand::RngCore;
use std::collections::BTreeMap;

/// The MNO's HSS (plus location registry) actor.
pub struct MnoCoreActor {
    stack: ActorId,
    pub db: SubscriberDb,
    conns: BTreeMap<StreamHandle, LpFramer>,
    /// IMSI → serving node registered via ULR.
    locations: BTreeMap<Imsi, u32>,
    pub air_served: u64,
    pub ulr_served: u64,
}

impl MnoCoreActor {
    pub fn new(stack: ActorId, db: SubscriberDb) -> Self {
        MnoCoreActor {
            stack,
            db,
            conns: BTreeMap::new(),
            locations: BTreeMap::new(),
            air_served: 0,
            ulr_served: 0,
        }
    }

    fn reply(&mut self, ctx: &mut Ctx<'_>, conn: StreamHandle, pkt: DiameterPacket) {
        ctx.send_to(
            self.stack,
            &flows::MNO_S6A_ANSWER,
            Box::new(SockCmd::StreamSend {
                handle: conn,
                bytes: lp_encode(&pkt.encode()),
            }),
        );
    }

    fn handle_diameter(&mut self, ctx: &mut Ctx<'_>, conn: StreamHandle, pkt: DiameterPacket) {
        let answer = match pkt.message {
            S6aMessage::AuthInfoRequest { imsi, num_vectors } => {
                self.air_served += 1;
                let mut vectors = Vec::new();
                for _ in 0..num_vectors.clamp(1, 4) {
                    let mut rand = [0u8; 16];
                    ctx.rng().fill_bytes(&mut rand);
                    match self.db.generate_auth_vector(imsi, Rand(rand)) {
                        Some(v) => vectors.push(WireAuthVector {
                            rand: v.rand,
                            autn: v.autn,
                            xres: v.xres,
                            kasme: v.kasme,
                        }),
                        None => break,
                    }
                }
                let result = if vectors.is_empty() {
                    ResultCode::UserUnknown
                } else {
                    ResultCode::Success
                };
                S6aMessage::AuthInfoAnswer { result, vectors }
            }
            S6aMessage::UpdateLocationRequest { imsi, serving_node } => {
                self.ulr_served += 1;
                if self.db.get(imsi).is_some() {
                    self.locations.insert(imsi, serving_node);
                    let ambr = self.db.get(imsi).map(|p| p.ambr).unwrap();
                    S6aMessage::UpdateLocationAnswer {
                        result: ResultCode::Success,
                        ambr_dl_kbps: ambr.dl_kbps,
                        ambr_ul_kbps: ambr.ul_kbps,
                    }
                } else {
                    S6aMessage::UpdateLocationAnswer {
                        result: ResultCode::UserUnknown,
                        ambr_dl_kbps: 0,
                        ambr_ul_kbps: 0,
                    }
                }
            }
            S6aMessage::PurgeRequest { imsi } => {
                self.locations.remove(&imsi);
                S6aMessage::PurgeAnswer {
                    result: ResultCode::Success,
                }
            }
            // Answers arriving at a server are protocol errors; ignore.
            _ => return,
        };
        self.reply(
            ctx,
            conn,
            DiameterPacket {
                hop_by_hop: pkt.hop_by_hop,
                end_to_end: pkt.end_to_end,
                message: answer,
            },
        );
    }

    pub fn serving_node(&self, imsi: Imsi) -> Option<u32> {
        self.locations.get(&imsi).copied()
    }
}

impl Actor for MnoCoreActor {
    fn handle(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Start => {
                let me = ctx.id();
                ctx.send_to(
                    self.stack,
                    &magma_net::flows::SOCK_CMD,
                    Box::new(SockCmd::ListenStream {
                        port: ports::DIAMETER,
                        owner: me,
                    }),
                );
            }
            Event::Msg { payload, .. } => {
                match downcast::<SockEvent>(payload, "mno-core") {
                    SockEvent::StreamAccepted { handle, .. } => {
                        self.conns.insert(handle, LpFramer::new());
                    }
                    SockEvent::StreamRecv { handle, bytes } => {
                        if let Some(framer) = self.conns.get_mut(&handle) {
                            let msgs = framer.push(&bytes);
                            for m in msgs {
                                if let Ok(pkt) = DiameterPacket::decode(&m) {
                                    self.handle_diameter(ctx, handle, pkt);
                                }
                            }
                        }
                    }
                    SockEvent::StreamClosed { handle, .. } => {
                        self.conns.remove(&handle);
                    }
                    _ => {}
                }
            }
            Event::Timer { .. } | Event::CpuDone { .. } => {}
        }
    }

    fn name(&self) -> String {
        "mno-core".to_string()
    }
}
