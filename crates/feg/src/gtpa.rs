//! GTP Aggregator (GTP-A): the centralized user-plane interconnect for
//! home-routed federation (§3.6).
//!
//! The paper runs it on a single bare-metal server (8-core Xeon, 2×10G
//! NICs) co-located with the partner MNO's core. Because it is a single
//! on-path device, its capacity bounds the home-routed user plane — the
//! scaling implication §4.3.2 alludes to, which the ablation bench
//! contrasts with local breakout (which scales with AGWs).

use serde::Serialize;

/// Capacity model for the GTP-A box.
#[derive(Debug, Clone, Copy)]
pub struct GtpaParams {
    /// Aggregate forwarding capacity (NIC-bound: 2×10G).
    pub capacity_bps: u64,
    /// Per-tunnel bookkeeping cost as an effective per-AGW cap, if any.
    pub per_agw_cap_bps: Option<u64>,
}

impl Default for GtpaParams {
    fn default() -> Self {
        GtpaParams {
            capacity_bps: 20_000_000_000,
            per_agw_cap_bps: None,
        }
    }
}

/// Flow-level aggregator: offered per-AGW loads in, granted loads out.
#[derive(Debug)]
pub struct GtpAggregator {
    pub params: GtpaParams,
    pub total_offered: u64,
    pub total_granted: u64,
}

/// Result of one aggregation round.
#[derive(Debug, Clone, Serialize)]
pub struct GtpaTick {
    /// Granted bytes per AGW, same order as offered.
    pub grants: Vec<u64>,
    pub clipped: bool,
}

impl GtpAggregator {
    pub fn new(params: GtpaParams) -> Self {
        GtpAggregator {
            params,
            total_offered: 0,
            total_granted: 0,
        }
    }

    /// Apply one tick of offered load (bytes per AGW over `tick_secs`).
    pub fn tick(&mut self, offered: &[u64], tick_secs: f64) -> GtpaTick {
        let mut loads: Vec<u64> = offered.to_vec();
        if let Some(cap) = self.params.per_agw_cap_bps {
            let per_cap = (cap as f64 / 8.0 * tick_secs) as u64;
            for l in &mut loads {
                *l = (*l).min(per_cap);
            }
        }
        let total: u64 = loads.iter().sum();
        let cap_bytes = (self.params.capacity_bps as f64 / 8.0 * tick_secs) as u64;
        let clipped = total > cap_bytes;
        let scale = if clipped {
            cap_bytes as f64 / total.max(1) as f64
        } else {
            1.0
        };
        let grants: Vec<u64> = loads
            .iter()
            .map(|l| (*l as f64 * scale) as u64)
            .collect();
        self.total_offered += offered.iter().sum::<u64>();
        self.total_granted += grants.iter().sum::<u64>();
        GtpaTick { grants, clipped }
    }
}

/// Network capacity comparison: home routing (through one GTP-A) vs
/// local breakout (per-AGW SGi) as the fleet grows. Returns
/// `(n_agws, home_routed_gbps, local_breakout_gbps)` rows.
pub fn scaling_comparison(
    per_agw_offered_bps: u64,
    params: GtpaParams,
    fleet_sizes: &[usize],
) -> Vec<(usize, f64, f64)> {
    fleet_sizes
        .iter()
        .map(|&n| {
            let mut gtpa = GtpAggregator::new(params);
            let offered_bytes = (per_agw_offered_bps as f64 / 8.0) as u64;
            let tick = gtpa.tick(&vec![offered_bytes; n], 1.0);
            let home: u64 = tick.grants.iter().sum();
            let local = per_agw_offered_bps as f64 * n as f64;
            (n, home as f64 * 8.0 / 1e9, local / 1e9)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_capacity_grants_everything() {
        let mut g = GtpAggregator::new(GtpaParams::default());
        let t = g.tick(&[1_000_000, 2_000_000], 0.1);
        assert_eq!(t.grants, vec![1_000_000, 2_000_000]);
        assert!(!t.clipped);
    }

    #[test]
    fn over_capacity_scales_fairly() {
        let mut g = GtpAggregator::new(GtpaParams {
            capacity_bps: 8_000_000, // 1 MB/s
            per_agw_cap_bps: None,
        });
        let t = g.tick(&[1_500_000, 500_000], 1.0);
        assert!(t.clipped);
        let total: u64 = t.grants.iter().sum();
        assert!((total as i64 - 1_000_000).abs() < 10);
        // Proportional: 3:1 ratio preserved.
        assert!((t.grants[0] as f64 / t.grants[1] as f64 - 3.0).abs() < 0.01);
    }

    #[test]
    fn per_agw_cap_applies_before_aggregate() {
        let mut g = GtpAggregator::new(GtpaParams {
            capacity_bps: 1_000_000_000,
            per_agw_cap_bps: Some(8_000_000),
        });
        let t = g.tick(&[10_000_000, 10_000_000], 1.0);
        assert_eq!(t.grants, vec![1_000_000, 1_000_000]);
    }

    #[test]
    fn home_routing_saturates_local_breakout_scales() {
        let rows = scaling_comparison(
            100_000_000, // 100 Mbit/s per AGW
            GtpaParams::default(),
            &[10, 100, 200, 400, 1000],
        );
        // Local breakout is linear throughout.
        assert!((rows[4].2 - 100.0).abs() < 1.0);
        // Home routing caps at the GTP-A's 20 Gbit/s.
        assert!(rows[4].1 <= 20.1);
        assert!(rows[1].1 > 9.9, "under capacity still fine");
        // Crossover: beyond 200 AGWs the GTP-A is the bottleneck.
        assert!(rows[3].1 < rows[3].2);
    }
}
