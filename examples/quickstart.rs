//! Quickstart: deploy a one-site Magma network, attach a handful of UEs,
//! and inspect the network through the orchestrator's northbound API.
//!
//! Run with: `cargo run --release --example quickstart`

use magma::prelude::*;
use magma::testbed::{overall_csr, throughput_mbps};

fn main() {
    println!("{}", magma::render_table1());

    // A small rural site: one eNodeB, eight subscribers, HTTP traffic.
    let site = SiteSpec {
        enbs: 1,
        ues_per_enb: 8,
        attach_rate_per_sec: 1.0,
        traffic: TrafficModel::http_download(),
        ..SiteSpec::typical()
    };
    let cfg = ScenarioConfig::new(42).with_agw(AgwSpec::bare_metal(site));
    let mut d = magma::deploy(cfg);

    println!("deploying: 1 orchestrator, 1 AGW, 1 eNodeB, 8 UEs…");
    d.world.run_until(SimTime::from_secs(60));

    let rec = d.world.metrics();
    println!("\n== results after 60 simulated seconds ==");
    println!("connection success rate : {:.3}", overall_csr(rec, "ran"));
    println!(
        "attaches accepted       : {}",
        rec.counter("agw0.attach.accept")
    );
    let tp = throughput_mbps(rec, "agw0.tp_bytes", SimDuration::from_secs(1));
    let steady: f64 =
        tp.iter().rev().take(20).map(|(_, v)| *v).sum::<f64>() / 20.0;
    println!("steady throughput       : {steady:.1} Mbit/s");

    // Northbound view (what an operator's dashboard reads).
    let orc8r = d.orc8r.borrow();
    let (gws, enbs, sessions) = orc8r.fleet_summary();
    println!("\n== orchestrator fleet view ==");
    println!("gateways={gws} enodebs={enbs} active_sessions={sessions}");
    println!(
        "gateway-reported attach.accept = {}",
        orc8r.gateway_metric("agw0", "attach.accept")
    );
    println!(
        "config journal entries = {} (version {})",
        orc8r.journal.len(),
        orc8r.db.version
    );

    let util = d.world.utilization(d.agws[0].host, "all").unwrap();
    println!(
        "\nAGW CPU: mean {:.1}% peak {:.1}% over the run",
        util.mean() * 100.0,
        util.peak() * 100.0
    );
}
