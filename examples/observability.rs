//! Observability end to end: two gateways run a typical site while each
//! one's `metricsd` samples its registry (CPU gauges, service counters,
//! attach stage histograms) and pushes snapshots to the orchestrator
//! over the simulated backhaul. We then answer the operator queries the
//! paper's deployments rely on — CPU% across gateways and attach latency
//! p50/p95/p99 broken down by stage — *from the orchestrator's store*,
//! and show that a same-seed rerun exports byte-identical JSON.
//!
//! Run with: `cargo run --release --example observability`

use magma::prelude::*;
use magma::testbed::{orc8r_metrics_json, render_orc8r_metrics};

fn run(seed: u64) -> (String, String) {
    let site = SiteSpec {
        enbs: 2,
        ues_per_enb: 24,
        attach_rate_per_sec: 4.0,
        ..SiteSpec::typical()
    };
    let cfg = ScenarioConfig::new(seed)
        .with_agw(AgwSpec::bare_metal(site.clone()))
        .with_agw(AgwSpec::vm(site, CoreLayout::Pinned { cp: 2, up: 2 }));
    let mut d = magma::deploy(cfg);
    d.world.run_until(SimTime::from_secs(90));

    let st = d.orc8r.borrow();
    let table = render_orc8r_metrics(&st);
    let js = serde_json::to_string_pretty(&orc8r_metrics_json(&st)).unwrap();
    (table, js)
}

fn main() {
    let (table, js) = run(42);
    println!("{table}");

    let (_, js2) = run(42);
    assert_eq!(js, js2, "same seed must export identical snapshots");
    println!("same-seed rerun exported identical JSON: OK\n");

    println!("JSON export:\n{js}");
}
