//! Observability end to end: two gateways run a typical site while each
//! one's `metricsd` samples its registry (CPU gauges, service counters,
//! attach stage histograms) and pushes snapshots — now with structured
//! events riding along — to the orchestrator over the simulated
//! backhaul. We partition one gateway's backhaul mid-run and answer the
//! operator questions the paper's deployments rely on purely from the
//! orchestrator's store: CPU% and attach quantiles, windowed rate/avg
//! queries over the rolling history, the gateway event log, and the
//! alert firing history (staleness fires during the partition and
//! resolves after it heals). A same-seed rerun exports byte-identical
//! JSON.
//!
//! Run with: `cargo run --release --example observability`
//!
//! Set `OBS_EXPORT_PATH=/path/out.json` to also write the telemetry
//! export to disk (used by `scripts/check.sh` for golden-file diffing).

use magma::orc8r::AlertRule;
use magma::prelude::*;
use magma::testbed::{
    orc8r_telemetry_json, render_orc8r_alerts, render_orc8r_events, render_orc8r_metrics,
};

fn run(seed: u64) -> (String, String) {
    let site = SiteSpec {
        enbs: 2,
        ues_per_enb: 24,
        attach_rate_per_sec: 4.0,
        ..SiteSpec::typical()
    };
    let cfg = ScenarioConfig::new(seed)
        .with_agw(AgwSpec::bare_metal(site.clone()))
        .with_agw(AgwSpec::vm(site, CoreLayout::Pinned { cp: 2, up: 2 }))
        .with_alert_rules(vec![
            AlertRule::cpu_sustained(85.0, SimDuration::from_secs(30)),
            AlertRule::push_staleness(3, SimDuration::from_secs(5)),
        ]);
    let mut d = magma::deploy(cfg);

    // Partition agw0's backhaul from t=30s to t=60s: its metricsd queues
    // snapshots, the orchestrator's staleness rule fires, and the queue
    // drains in order after the heal (seq-dedupe keeps it exactly-once).
    d.world.run_until(SimTime::from_secs(30));
    let agw0_node = d.agws[0].node;
    d.net.set_link_up(agw0_node, d.orc8r_node, false);
    d.world.run_until(SimTime::from_secs(60));
    d.net.set_link_up(agw0_node, d.orc8r_node, true);
    d.world.run_until(SimTime::from_secs(90));

    let st = d.orc8r.borrow();
    let mut table = render_orc8r_metrics(&st);
    table.push('\n');
    table.push_str(&render_orc8r_events(&st));
    table.push('\n');
    table.push_str(&render_orc8r_alerts(&st));
    let js = serde_json::to_string_pretty(&orc8r_telemetry_json(&st)).unwrap();
    (table, js)
}

fn main() {
    let (table, js) = run(42);
    println!("{table}");

    let (_, js2) = run(42);
    assert_eq!(js, js2, "same seed must export identical telemetry");
    println!("same-seed rerun exported identical JSON: OK\n");

    if let Ok(path) = std::env::var("OBS_EXPORT_PATH") {
        std::fs::write(&path, &js).expect("write telemetry export");
        println!("telemetry export written to {path}");
    } else {
        println!("JSON export:\n{js}");
    }
}
