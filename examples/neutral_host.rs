//! The franchised neutral-host deployment (§4.3.2): micro-operators run
//! AGWs + radios; subscribers belong to an incumbent MNO. The AGW has no
//! local record of the roamer, so authentication is proxied through the
//! Federation Gateway (S6a/Diameter) to the MNO's HSS; the user plane
//! breaks out locally.
//!
//! Also demonstrates the GTP Aggregator scaling analysis: home-routed
//! traffic funnels through one GTP-A and saturates, while local breakout
//! scales linearly with AGWs.
//!
//! Run with: `cargo run --release --example neutral_host`

use magma::feg::{scaling_comparison, FegActor, GtpaParams, MnoCoreActor};
use magma::sim::{HostSpec, SimTime, World};
use magma_agw::{new_agw_handle, AgwActor, AgwConfig};
use magma_net::{Endpoint, LinkProfile, NetFabric, NetStack, ports};
use magma_ran::{ue_fleet, EnbConfig, EnodebActor, TrafficModel};
use magma_subscriber::{SubscriberDb, SubscriberProfile};
use magma_wire::Imsi;

fn main() {
    let mut w = World::new(33);
    // One topology domain per shard component: the micro-operator site,
    // the FeG, and the incumbent MNO core (see docs/SHARD_PLAN.md).
    let mut net = NetFabric::new();
    let site_domain = net.add_domain();
    let feg_domain = net.add_domain();
    let mno_domain = net.add_domain();
    let agw_node = net.add_node(site_domain, "micro-operator-agw");
    let feg_node = net.add_node(feg_domain, "feg");
    let mno_node = net.add_node(mno_domain, "incumbent-mno");
    let enb_node = net.add_node(site_domain, "enb");
    net.connect(agw_node, feg_node, LinkProfile::fiber());
    net.connect(feg_node, mno_node, LinkProfile::fiber());
    net.connect(enb_node, agw_node, LinkProfile::lan());
    let agw_stack = w.add_actor(Box::new(NetStack::new(agw_node, net.handle_of(agw_node))));
    net.bind_stack(agw_node, agw_stack);
    let feg_stack = w.add_actor(Box::new(NetStack::new(feg_node, net.handle_of(feg_node))));
    net.bind_stack(feg_node, feg_stack);
    let mno_stack = w.add_actor(Box::new(NetStack::new(mno_node, net.handle_of(mno_node))));
    net.bind_stack(mno_node, mno_stack);
    let enb_stack = w.add_actor(Box::new(NetStack::new(enb_node, net.handle_of(enb_node))));
    net.bind_stack(enb_node, enb_stack);

    // Ten incumbent-MNO subscribers, known only to the MNO's HSS.
    let mut mno_db = SubscriberDb::new();
    for i in 1..=10u64 {
        mno_db.upsert(SubscriberProfile::lte(Imsi::new(310, 26, i), 7, i));
    }
    w.add_actor(Box::new(MnoCoreActor::new(mno_stack, mno_db)));
    w.add_actor(Box::new(FegActor::new(
        feg_stack,
        Endpoint::new(mno_node, ports::DIAMETER),
    )));

    let host = w.add_host(HostSpec::uniform("agw", 4, 1.0));
    let cfg = AgwConfig::new("agw0", host, agw_stack)
        .with_feg(Endpoint::new(feg_node, ports::FEG));
    let agw = w.add_actor(Box::new(AgwActor::new(cfg, new_agw_handle())));

    let ues = ue_fleet(7, 1, 10, TrafficModel::http_download());
    let mut enb_cfg = EnbConfig::new(1, enb_stack, Endpoint::new(agw_node, ports::S1AP), agw);
    enb_cfg.attach_rate_per_sec = 1.0;
    w.add_actor(Box::new(EnodebActor::new(enb_cfg, ues)));

    println!("neutral host: micro-operator AGW ↔ FeG ↔ incumbent MNO HSS\n");
    w.run_until(SimTime::from_secs(45));
    let rec = w.metrics();
    println!(
        "roaming attaches accepted (auth proxied over S6a): {}",
        rec.counter("agw0.attach.accept")
    );
    let mb: f64 = rec
        .series("agw0.tp_bytes")
        .map(|s| s.values().sum::<f64>() / 1e6)
        .unwrap_or(0.0);
    println!("user traffic broken out locally at the AGW: {mb:.1} MB\n");

    println!("== GTP-A scaling (home routing vs local breakout) ==");
    println!("agws  home-routed(Gbps)  local-breakout(Gbps)");
    for (n, home, local) in scaling_comparison(
        100_000_000,
        GtpaParams::default(),
        &[50, 100, 200, 400, 800, 1600],
    ) {
        println!("{n:4} {home:17.1} {local:20.1}");
    }
    println!(
        "\nHome routing saturates at the GTP-A's 20 Gbit/s — the single\n\
         point of interconnection traditional MNOs require — while local\n\
         breakout scales linearly with the AGW fleet."
    );
}
