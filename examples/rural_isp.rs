//! The paper's motivating deployment (Figure 2): a small rural ISP's
//! first cellular site in Peru — one LTE eNodeB, a ruggedized embedded
//! PC as the AGW, and *satellite backhaul* to the world.
//!
//! The demo shows the two properties that make this viable with Magma:
//!
//! 1. The AGW keeps admitting subscribers while the orchestrator is
//!    reachable only over a 300 ms / 2%-loss satellite link — and even
//!    during a full multi-minute backhaul outage (headless operation).
//! 2. Policy still works at the edge: a tiered rate plan ("full speed
//!    until the cap, then throttled") is enforced in the AGW's data
//!    plane with no orchestrator involvement.
//!
//! Run with: `cargo run --release --example rural_isp`

use magma::prelude::*;
use magma::testbed::{overall_csr, throughput_mbps};
use magma_net::LinkProfile;

fn main() {
    // A tiered plan: 4 Mbit/s until 10 MB in any hour, then 512 kbit/s
    // for 10 minutes — the §2.2 example policy.
    let plan = PolicyRule::tiered(
        "village-basic",
        TieredPolicy {
            normal: RateLimit {
                dl_kbps: 4_000,
                ul_kbps: 1_000,
            },
            cap_bytes: 10_000_000,
            window: SimDuration::from_secs(3600),
            throttled: RateLimit {
                dl_kbps: 512,
                ul_kbps: 256,
            },
            penalty: SimDuration::from_secs(600),
        },
    );

    let site = SiteSpec {
        enbs: 1,
        ues_per_enb: 30,
        attach_rate_per_sec: 0.5,
        traffic: TrafficModel {
            dl_bps: 6_000_000, // subscribers try to pull more than the plan
            ul_bps: 200_000,
        },
        ..SiteSpec::typical()
    };
    let mut spec = AgwSpec::bare_metal(site);
    spec.backhaul = LinkProfile::satellite();
    let cfg = ScenarioConfig::new(7)
        .with_agw(spec)
        .with_policies(vec![plan], vec!["village-basic".to_string()]);
    let mut d = magma::deploy(cfg);

    println!("rural site: 1 eNodeB + AGW, satellite backhaul to orc8r");
    d.world.run_until(SimTime::from_secs(90));
    let csr_1 = overall_csr(d.world.metrics(), "ran");
    println!("phase 1 (satellite backhaul): CSR = {csr_1:.3}");

    // Storm knocks the backhaul out entirely for three minutes.
    println!("\n-- backhaul outage (3 minutes, orchestrator unreachable) --");
    let agw_node = d.agws[0].node;
    let orc8r_node = d.orc8r_node;
    d.net.set_link_up(agw_node, orc8r_node, false);
    d.world.run_until(SimTime::from_secs(90 + 180));
    let csr_2 = overall_csr(d.world.metrics(), "ran");
    println!("phase 2 (headless): CSR = {csr_2:.3} — attaches continued");

    d.net.set_link_up(agw_node, orc8r_node, true);
    d.world.run_until(SimTime::from_secs(90 + 180 + 60));

    let rec = d.world.metrics();
    println!(
        "\nattaches accepted: {} / rejects: {}",
        rec.counter("agw0.attach.accept"),
        rec.counter("agw0.attach.reject")
    );
    let tp = throughput_mbps(rec, "agw0.tp_bytes", SimDuration::from_secs(10));
    println!("\nsite throughput over time (tiered policy in action):");
    println!("t(s)  Mbit/s");
    for (t, v) in tp.iter().step_by(3) {
        println!("{:4} {:7.2}", t.as_micros() / 1_000_000, v);
    }
    println!(
        "\nThe early peak is the 4 Mbit/s phase; once subscribers hit the\n\
         10 MB cap the AGW reprograms its meters to 512 kbit/s — all local,\n\
         no orchestrator round-trip, exactly the §2.2 policy."
    );
}
