//! Regenerate every table and figure from the paper's evaluation, plus
//! the DESIGN.md ablations, and print them in the paper's layout.
//!
//! Run with: `cargo run --release --example paper_figures`
//! (takes a few minutes; pass a figure name to run just one, e.g.
//! `cargo run --release --example paper_figures fig6`)

use magma::costmodel;
use magma::testbed::experiments::{
    ablation_failover, ablation_gtp, ablation_headless, ablation_quota, cups, fig5, fig6, fig9,
    scaling, workload_mix,
};
use magma::sim::SimDuration;
use magma_epc_baseline as epc;

fn want(args: &[String], name: &str) -> bool {
    args.is_empty() || args.iter().any(|a| a == name)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = 1;

    if want(&args, "table1") {
        println!("{}", magma::render_table1());
    }
    if want(&args, "table2") {
        println!("{}", costmodel::table2(costmodel::SiteParams::default()).render());
        println!();
    }
    if want(&args, "table3") {
        println!("{}", costmodel::render_table3(costmodel::LaborParams::default()));
        println!();
    }
    if want(&args, "fig5") {
        let r = fig5::run(seed, SimDuration::from_secs(300));
        println!("{}", fig5::render(&r));
    }
    if want(&args, "fig6") {
        let r = fig6::run(seed, &fig6::default_rates());
        println!("{}", fig6::render(&r));
    }
    if want(&args, "fig7") || want(&args, "fig8") {
        let r = cups::run(seed);
        println!("{}", cups::render_fig7(&r));
        println!("{}", cups::render_fig8(&r));
    }
    if want(&args, "fig9") {
        println!("{}", fig9::render(2022));
    }
    if want(&args, "growth") {
        let pts = costmodel::project(
            costmodel::GrowthParams::default(),
            costmodel::Orc8rCostParams::default(),
            36,
        );
        println!("{}", costmodel::deployment::render(&pts));
    }
    if want(&args, "ablation_a") {
        let reports = epc::sweep(&[0.0, 0.02, 0.05, 0.10, 0.20], 5_000, 100, seed);
        println!("{}", epc::render_sync(&reports));
    }
    if want(&args, "ablation_b") {
        let r = ablation_gtp::run(seed, &[0.0, 0.05, 0.10, 0.15, 0.25], 600);
        println!("{}", ablation_gtp::render(&r));
    }
    if want(&args, "ablation_c") {
        let r = ablation_headless::run(seed);
        println!("{}", ablation_headless::render(&r));
    }
    if want(&args, "ablation_d") {
        let r = ablation_failover::run(seed);
        println!("{}", ablation_failover::render(&r));
    }
    if want(&args, "ablation_e") {
        let pts: Vec<_> = [1, 2, 4, 8]
            .iter()
            .map(|&n| ablation_quota::race(n, 10_000_000, 1_000_000))
            .collect();
        println!("{}", ablation_quota::render(&pts));
    }
    if want(&args, "ablation_f") {
        let pts = scaling::run(seed, &[1, 2, 4, 8]);
        println!("{}", scaling::render(&pts));
    }
    if want(&args, "ablation_g") {
        let pts = workload_mix::run(seed, 240);
        println!("{}", workload_mix::render(&pts));
    }
}
