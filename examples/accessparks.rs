//! The AccessParks deployment (§4.3.1, Figures 9 & 10): LTE/CBRS as
//! *backhaul* for WiFi hotspots. End users associate to ordinary WiFi
//! APs; each AP authenticates to the Magma AGW over RADIUS (carrier
//! WiFi) and its aggregate hotspot traffic rides the cellular link with
//! an unrestricted policy — per-user control stays in the operator's
//! existing captive portal.
//!
//! Run with: `cargo run --release --example accessparks`

use magma::ran::{SectorModel, WifiApActor, WifiApConfig};
use magma::sim::{HostSpec, SimDuration, SimTime, World};
use magma::testbed::trace::{accessparks_trace, summarize, TraceParams};
use magma_agw::{new_agw_handle, AgwActor, AgwConfig};
use magma_net::{Endpoint, LinkProfile, NetFabric, NetStack, ports};
use magma_subscriber::{SubscriberDb, SubscriberProfile};
use magma_wire::Imsi;

fn main() {
    let mut w = World::new(2022);
    // The whole site is one shard component — a single topology domain.
    let mut net = NetFabric::new();
    let site_domain = net.add_domain();

    // One site AGW; four WiFi APs (CBRS fixed-wireless modems) behind it.
    let agw_node = net.add_node(site_domain, "agw");
    let ap_nodes: Vec<_> = (0..4)
        .map(|i| {
            let n = net.add_node(site_domain, &format!("ap{i}"));
            net.connect(n, agw_node, LinkProfile::lan());
            n
        })
        .collect();
    let agw_stack = w.add_actor(Box::new(NetStack::new(agw_node, net.handle_of(agw_node))));
    net.bind_stack(agw_node, agw_stack);
    let host = w.add_host(HostSpec::uniform("agw", 4, 1.0));

    // Provision the APs as WiFi subscribers (union schema: no SIM, just
    // RADIUS credentials; unrestricted policy).
    let mut db = SubscriberDb::new();
    db.upsert_rule(magma::policy::PolicyRule::unrestricted("unrestricted"));
    for i in 0..4u64 {
        db.upsert(SubscriberProfile::wifi(
            Imsi::new(310, 26, 9000 + i),
            &format!("ap-{i}@accessparks"),
            "cbrs-modem-psk",
        ));
    }
    let cfg = AgwConfig::new("agw0", host, agw_stack);
    let mut agw = AgwActor::new(cfg, new_agw_handle());
    agw.preprovision(db.snapshot());
    agw.set_up_cores(4);
    let agw = w.add_actor(Box::new(agw));

    for (i, node) in ap_nodes.iter().enumerate() {
        let stack = w.add_actor(Box::new(NetStack::new(*node, net.handle_of(*node))));
        net.bind_stack(*node, stack);
        w.add_actor(Box::new(WifiApActor::new(WifiApConfig {
            name: format!("ap-{i}"),
            stack,
            agw_aaa: Endpoint::new(agw_node, ports::RADIUS_AUTH),
            agw_actor: agw,
            username: format!("ap-{i}@accessparks"),
            password: "cbrs-modem-psk".to_string(),
            sector: SectorModel::cbrs_modem(),
            tick: SimDuration::from_millis(100),
            dl_bps: 25_000_000, // a busy hotspot behind each AP
            ul_bps: 5_000_000,
            auth_at: SimDuration::from_millis(200 + 300 * i as u64),
        })));
    }

    println!("AccessParks-style site: 4 WiFi APs backhauled by one AGW\n");
    w.run_until(SimTime::from_secs(60));

    let rec = w.metrics();
    let authed = rec.series("wifi.ap_authed").map(|s| s.len()).unwrap_or(0);
    println!("APs authenticated via RADIUS : {authed}/4");
    println!(
        "AGW wifi.accept counter      : {}",
        rec.counter("agw0.wifi.accept")
    );
    let total_bytes: f64 = rec
        .series("agw0.tp_bytes")
        .map(|s| s.values().sum())
        .unwrap_or(0.0);
    println!(
        "backhauled in 60s            : {:.1} MB ({:.0} Mbit/s avg)",
        total_bytes / 1e6,
        total_bytes * 8.0 / 60.0 / 1e6
    );

    // The two-month synthetic usage trace (Figure 9's series).
    println!("\n== Figure 9 (synthetic production trace) ==");
    let trace = accessparks_trace(TraceParams::default());
    let s = summarize(&trace);
    println!(
        "{} hours: peak {} active subs, mean {:.0}; peak {:.1} GB/h; total {:.1} TB; {:.1}x diurnal swing",
        s.hours, s.peak_active, s.mean_active, s.peak_gb_per_hour, s.total_tb, s.diurnal_swing
    );
}
