//! End-to-end policy enforcement: the paper's §2.2 example policy
//! ("rate limit to X until Y bytes in t₁, then Z for t₂") flows from the
//! orchestrator's northbound API through the AGW's sessiond into
//! data-plane meters, and its phase transitions show up in measured
//! throughput.

use magma::prelude::*;
use magma::testbed::{mean_over, throughput_mbps};

#[test]
fn tiered_policy_throttles_after_cap() {
    let plan = PolicyRule::tiered(
        "tiered",
        TieredPolicy {
            normal: RateLimit {
                dl_kbps: 8_000,
                ul_kbps: 2_000,
            },
            cap_bytes: 20_000_000, // 20 MB
            window: SimDuration::from_secs(3600),
            throttled: RateLimit {
                dl_kbps: 500,
                ul_kbps: 250,
            },
            penalty: SimDuration::from_secs(300),
        },
    );
    let site = SiteSpec {
        enbs: 1,
        ues_per_enb: 2,
        attach_rate_per_sec: 2.0,
        // Offer more than the plan allows.
        traffic: TrafficModel {
            dl_bps: 20_000_000,
            ul_bps: 0,
        },
        ..SiteSpec::typical()
    };
    let cfg = ScenarioConfig::new(11)
        .with_agw(AgwSpec::bare_metal(site))
        .with_policies(vec![plan], vec!["tiered".to_string()]);
    let mut sc = magma::deploy(cfg);
    sc.world.run_until(SimTime::from_secs(120));

    let rec = sc.world.metrics();
    let tp = throughput_mbps(rec, "agw0.tp_bytes", SimDuration::from_secs(1));

    // Phase 1: both UEs at ~8 Mbit/s each (meter-limited, not offered).
    let early = mean_over(&tp, SimTime::from_secs(5), SimTime::from_secs(15));
    assert!(
        (early - 16.0).abs() < 2.5,
        "phase-1 rate ≈ 2×8 Mbit/s, got {early:.1}"
    );

    // Cap: 20 MB at 1 MB/s per UE ⇒ breach at ~20 s; by t=40 throttled.
    let late = mean_over(&tp, SimTime::from_secs(60), SimTime::from_secs(115));
    assert!(
        late < 2.0,
        "phase-2 throttled to ≈ 2×0.5 Mbit/s, got {late:.1}"
    );
    assert!(late > 0.5, "throttled but not blocked, got {late:.1}");
}

#[test]
fn flat_rate_limit_enforced_per_subscriber() {
    let silver = PolicyRule::rate_limited("silver", 2_000, 500);
    let site = SiteSpec {
        enbs: 1,
        ues_per_enb: 4,
        attach_rate_per_sec: 2.0,
        traffic: TrafficModel {
            dl_bps: 50_000_000, // way over the plan
            ul_bps: 0,
        },
        ..SiteSpec::typical()
    };
    let cfg = ScenarioConfig::new(12)
        .with_agw(AgwSpec::bare_metal(site))
        .with_policies(vec![silver], vec!["silver".to_string()]);
    let mut sc = magma::deploy(cfg);
    sc.world.run_until(SimTime::from_secs(60));
    let rec = sc.world.metrics();
    let tp = throughput_mbps(rec, "agw0.tp_bytes", SimDuration::from_secs(1));
    let steady = mean_over(&tp, SimTime::from_secs(20), SimTime::from_secs(55));
    // 4 UEs × 2 Mbit/s.
    assert!((steady - 8.0).abs() < 1.5, "metered to plan: {steady:.1}");
}

#[test]
fn policy_update_propagates_and_applies_to_new_sessions() {
    // Start unrestricted; switch the rule to a tight limit mid-run; a UE
    // attaching after the change gets the new limit.
    let site = SiteSpec {
        enbs: 1,
        ues_per_enb: 2,
        attach_rate_per_sec: 0.02, // second UE attaches ~50s in
        traffic: TrafficModel {
            dl_bps: 30_000_000,
            ul_bps: 0,
        },
        ..SiteSpec::typical()
    };
    let cfg = ScenarioConfig::new(13)
        .with_agw(AgwSpec::bare_metal(site))
        .with_policies(
            vec![PolicyRule::rate_limited("plan", 30_000, 10_000)],
            vec!["plan".to_string()],
        );
    let mut sc = magma::deploy(cfg);
    sc.world.run_until(SimTime::from_secs(20));

    // Tighten the plan via the northbound API.
    sc.orc8r
        .borrow_mut()
        .upsert_policy(PolicyRule::rate_limited("plan", 1_000, 500));
    sc.world.run_until(SimTime::from_secs(120));

    let rec = sc.world.metrics();
    let tp = throughput_mbps(rec, "agw0.tp_bytes", SimDuration::from_secs(1));
    // First UE (old limit) ~30 Mbit/s early.
    let early = mean_over(&tp, SimTime::from_secs(5), SimTime::from_secs(15));
    assert!(early > 20.0, "first UE unthrottled early: {early:.1}");
    // After the second UE attaches under the new rule, the delta it adds
    // is ~1 Mbit/s (the first session keeps its compiled limit until it
    // re-attaches — config applies to *new* sessions).
    let late = mean_over(&tp, SimTime::from_secs(80), SimTime::from_secs(115));
    assert!(
        late < 33.0 && late > 28.0,
        "old session at 30, new session at 1: {late:.1}"
    );
    assert_eq!(rec.counter("agw0.attach.accept"), 2.0);
}
