//! Same-seed determinism regression: a mixed attach + traffic scenario
//! must export byte-identical telemetry across runs.
//!
//! This pins the property magma-lint enforces statically (no hash-ordered
//! state on an export-reachable path, no ambient clocks or entropy — see
//! docs/DETERMINISM.md). The scenario deliberately crosses every layer
//! that used to hold a `HashMap`: UE contexts and calls in the AGW,
//! dataplane rule stats/usage and meters under live traffic, RPC client
//! retry state, and the orchestrator's connection table.

use magma::prelude::*;
use magma::sim::{
    detect, downcast, first_divergence, Actor, ActorId, Ctx, Event, RaceExport, RunSpec,
    WindowDigest, World,
};
use magma::testbed::orc8r_telemetry_json;

fn mixed_site() -> SiteSpec {
    SiteSpec {
        enbs: 2,
        ues_per_enb: 16,
        attach_rate_per_sec: 4.0,
        // Keep the default HTTP-download traffic model: the point is that
        // attaches and user-plane traffic interleave in the same run.
        ..SiteSpec::typical()
    }
}

/// One full run: (in-band orc8r export, whole-world registry snapshot).
fn run(seed: u64) -> (String, String) {
    let cfg = ScenarioConfig::new(seed)
        .with_agw(AgwSpec::bare_metal(mixed_site()))
        .with_agw(AgwSpec::vm(mixed_site(), CoreLayout::Pinned { cp: 2, up: 2 }));
    let mut d = magma::deploy(cfg);
    d.world.run_until(SimTime::from_secs(75));

    let st = d.orc8r.borrow();
    let northbound = serde_json::to_string(&orc8r_telemetry_json(&st)).unwrap();
    let registry = serde_json::to_string(&d.world.registry().snapshot()).unwrap();
    (northbound, registry)
}

#[test]
fn mixed_attach_and_traffic_is_byte_identical_across_same_seed_runs() {
    let (north_a, reg_a) = run(42);

    // The run is not vacuous: attaches succeeded and traffic moved bytes
    // through the dataplane on both gateways.
    let snap: serde_json::Value = serde_json::from_str(&reg_a).unwrap();
    let counters = &snap["counters"];
    for gw in ["agw0", "agw1"] {
        assert!(
            counters[&format!("{gw}.mme.attach_accept")].as_f64().unwrap_or(0.0) > 0.0,
            "{gw}: no attaches landed"
        );
        assert!(
            counters[&format!("{gw}.dataplane.dl_bytes")].as_f64().unwrap_or(0.0) > 0.0,
            "{gw}: no downlink traffic metered"
        );
    }

    // Byte-for-byte identical on a same-seed re-run — both the in-band
    // (metricsd -> orc8r) view and the raw registry.
    let (north_b, reg_b) = run(42);
    assert_eq!(north_a, north_b, "same seed, same northbound export bytes");
    assert_eq!(reg_a, reg_b, "same seed, same registry snapshot bytes");

    // And a different seed actually perturbs the export, so the equality
    // above is not comparing empty or constant payloads.
    let (north_c, _) = run(43);
    assert_ne!(north_a, north_c, "different seed must perturb the export");
}

/// One racecheck-armed run of the mixed scenario under the given window
/// schedule (`None` = canonical `(time, seq)` order). Returns the same
/// two exports as [`run`] plus the per-window digest stream.
fn run_scheduled(seed: u64, schedule: Option<u64>) -> (String, String, Vec<WindowDigest>) {
    let cfg = ScenarioConfig::new(seed)
        .with_agw(AgwSpec::bare_metal(mixed_site()))
        .with_agw(AgwSpec::vm(mixed_site(), CoreLayout::Pinned { cp: 2, up: 2 }));
    let mut d = magma::deploy(cfg);
    d.world.enable_racecheck(schedule);
    d.world.run_until(SimTime::from_secs(40));

    let export = d.world.race_export();
    let st = d.orc8r.borrow();
    let northbound = serde_json::to_string(&orc8r_telemetry_json(&st)).unwrap();
    let registry = serde_json::to_string(&d.world.registry().snapshot()).unwrap();
    (northbound, registry, export.digests)
}

/// Permutation-invariance regression: the mixed scenario is race-free,
/// so draining each conservative window's component sub-queues in a
/// permuted order must not perturb anything observable — the northbound
/// export, the raw registry, and every per-window digest stay
/// byte-identical to the canonical schedule. This is the dynamic twin of
/// the S006/S007 lints: if someone folds schedule-dependent kernel state
/// into actor logic, this test (and `magma-bench --racecheck` in CI) is
/// what goes red.
#[test]
fn mixed_scenario_is_invariant_under_permuted_window_schedules() {
    let (north, reg, digests) = run_scheduled(42, None);
    assert!(
        digests.len() > 1_000,
        "canonical run sealed only {} digest windows — scenario collapsed?",
        digests.len()
    );
    for schedule in [1u64, 2, 3, 4] {
        let (north_p, reg_p, digests_p) = run_scheduled(42, Some(schedule));
        assert_eq!(
            first_divergence(&digests, &digests_p),
            None,
            "schedule {schedule}: window digests diverged from canonical"
        );
        assert_eq!(north, north_p, "schedule {schedule}: northbound export bytes changed");
        assert_eq!(reg, reg_p, "schedule {schedule}: registry snapshot bytes changed");
    }
}

/// A deliberately racy actor pair for the divergence fixture below: each
/// racer fires one message at the arbiter, timed to land in the same
/// 10µs window from two different shard components.
struct Racer {
    to: ActorId,
    tag: u64,
}

impl Actor for Racer {
    fn handle(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        if let Event::Start = event {
            ctx.send_in(self.to, SimDuration::from_micros(1_000), Box::new(self.tag));
        }
    }
    fn name(&self) -> String {
        format!("racer{}", self.tag)
    }
}

/// First-writer-wins: the arbiter latches whichever racer's message the
/// kernel happens to dispatch first and re-emits it as a timer tag — a
/// textbook logical race, since the winner is a schedule artifact the
/// flow contract never promises.
#[derive(Default)]
struct Arbiter {
    winner: Option<u64>,
}

impl Actor for Arbiter {
    fn handle(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        if let Event::Msg { payload, .. } = event {
            let tag = downcast::<u64>(payload, "arbiter");
            if self.winner.is_none() {
                self.winner = Some(tag);
                ctx.timer_in(SimDuration::from_micros(50), tag);
            }
        }
    }
    fn name(&self) -> String {
        "arbiter".into()
    }
}

fn racy_world_run(spec: RunSpec) -> RaceExport {
    let mut w = World::new(9);
    let arbiter = w.add_actor(Box::new(Arbiter::default()));
    let a = w.add_actor(Box::new(Racer { to: arbiter, tag: 1 }));
    let b = w.add_actor(Box::new(Racer { to: arbiter, tag: 2 }));
    // The racers live in different shard components, so a permuted
    // schedule can flip which one's Start (and hence whose message
    // enqueues first) runs first; the arbiter stays unassigned.
    w.shard_assign(a, "feg", 0);
    w.shard_assign(b, "orc8r", 0);
    w.enable_racecheck(spec.schedule);
    w.set_race_detail_window(spec.detail_window);
    w.run_until(SimTime::from_millis(2));
    w.race_export()
}

/// Seeded-divergence fixture: racecheck must localize the race to the
/// exact window and name the offending event pair. The racers' messages
/// both land at t=1000µs (window 100) — an order-invariant set, so that
/// window still folds identically — and the divergence surfaces at the
/// arbiter's tag-carrying timer at t=1050µs, window 105.
#[test]
fn racecheck_localizes_a_seeded_divergence_to_window_and_event_pair() {
    let divergent_seed = (1..=64)
        .find(|&s| {
            let canon = racy_world_run(RunSpec { schedule: None, detail_window: None });
            let perm = racy_world_run(RunSpec { schedule: Some(s), detail_window: None });
            first_divergence(&canon.digests, &perm.digests).is_some()
        })
        .expect("some schedule in 1..=64 must flip the racer order");

    let report = detect("seeded-divergence", racy_world_run, divergent_seed);
    assert!(report.divergent, "fixture race went undetected");
    assert_eq!(
        report.first_divergent_window,
        Some(105),
        "divergence must bisect to the arbiter's timer window, not the message window"
    );

    // The offending pair is the arbiter's winner-carrying timer, with the
    // latched tag flipped between the two schedules.
    let c = report.canonical.as_ref().expect("canonical side of the pair");
    let p = report.permuted.as_ref().expect("permuted side of the pair");
    for side in [c, p] {
        assert_eq!(side.kind, "timer");
        assert_eq!(side.actor, "arbiter");
        assert_eq!(side.component, "unassigned");
        assert_eq!(side.time_us, 1_050);
    }
    assert_ne!(c.detail, p.detail, "both schedules latched the same winner");
    let mut tags = [c.detail, p.detail];
    tags.sort_unstable();
    assert_eq!(tags, [1, 2], "the pair must carry the two racer tags");
    assert!(
        report.render().contains("DIVERGENT at window 105"),
        "render must name the bisected window:\n{}",
        report.render()
    );
}
