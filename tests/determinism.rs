//! Same-seed determinism regression: a mixed attach + traffic scenario
//! must export byte-identical telemetry across runs.
//!
//! This pins the property magma-lint enforces statically (no hash-ordered
//! state on an export-reachable path, no ambient clocks or entropy — see
//! docs/DETERMINISM.md). The scenario deliberately crosses every layer
//! that used to hold a `HashMap`: UE contexts and calls in the AGW,
//! dataplane rule stats/usage and meters under live traffic, RPC client
//! retry state, and the orchestrator's connection table.

use magma::prelude::*;
use magma::testbed::orc8r_telemetry_json;

fn mixed_site() -> SiteSpec {
    SiteSpec {
        enbs: 2,
        ues_per_enb: 16,
        attach_rate_per_sec: 4.0,
        // Keep the default HTTP-download traffic model: the point is that
        // attaches and user-plane traffic interleave in the same run.
        ..SiteSpec::typical()
    }
}

/// One full run: (in-band orc8r export, whole-world registry snapshot).
fn run(seed: u64) -> (String, String) {
    let cfg = ScenarioConfig::new(seed)
        .with_agw(AgwSpec::bare_metal(mixed_site()))
        .with_agw(AgwSpec::vm(mixed_site(), CoreLayout::Pinned { cp: 2, up: 2 }));
    let mut d = magma::deploy(cfg);
    d.world.run_until(SimTime::from_secs(75));

    let st = d.orc8r.borrow();
    let northbound = serde_json::to_string(&orc8r_telemetry_json(&st)).unwrap();
    let registry = serde_json::to_string(&d.world.registry().snapshot()).unwrap();
    (northbound, registry)
}

#[test]
fn mixed_attach_and_traffic_is_byte_identical_across_same_seed_runs() {
    let (north_a, reg_a) = run(42);

    // The run is not vacuous: attaches succeeded and traffic moved bytes
    // through the dataplane on both gateways.
    let snap: serde_json::Value = serde_json::from_str(&reg_a).unwrap();
    let counters = &snap["counters"];
    for gw in ["agw0", "agw1"] {
        assert!(
            counters[&format!("{gw}.mme.attach_accept")].as_f64().unwrap_or(0.0) > 0.0,
            "{gw}: no attaches landed"
        );
        assert!(
            counters[&format!("{gw}.dataplane.dl_bytes")].as_f64().unwrap_or(0.0) > 0.0,
            "{gw}: no downlink traffic metered"
        );
    }

    // Byte-for-byte identical on a same-seed re-run — both the in-band
    // (metricsd -> orc8r) view and the raw registry.
    let (north_b, reg_b) = run(42);
    assert_eq!(north_a, north_b, "same seed, same northbound export bytes");
    assert_eq!(reg_a, reg_b, "same seed, same registry snapshot bytes");

    // And a different seed actually perturbs the export, so the equality
    // above is not comparing empty or constant payloads.
    let (north_c, _) = run(43);
    assert_ne!(north_a, north_c, "different seed must perturb the export");
}
