//! Intra-AGW mobility (§3.2): the paper supports mobility across radios
//! served by a common AGW. A UE attaches via eNodeB 1; a target eNodeB
//! performs a path switch, and the AGW repoints the downlink tunnel
//! without touching the session.

use magma::prelude::*;
use magma::sim::{downcast, Actor, ActorId, Ctx, Event, World};
use magma_net::{lp_encode, ports, Endpoint, LpFramer, NetStack, SockCmd, SockEvent, StreamHandle};
use magma_wire::s1ap::{EnbUeId, MmeUeId, S1apMessage};
use magma_wire::Teid;

/// A bare-bones target eNodeB: S1-Setup, then a PathSwitchRequest for an
/// already-attached UE.
struct TargetEnb {
    stack: ActorId,
    agw: Endpoint,
    conn: Option<StreamHandle>,
    framer: LpFramer,
    switch_at: SimTime,
    target_ue: MmeUeId,
}

impl Actor for TargetEnb {
    fn handle(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Start => {
                let me = ctx.id();
                ctx.send(
                    self.stack,
                    Box::new(SockCmd::OpenStream {
                        peer: self.agw,
                        owner: me,
                        user: 50,
                    }),
                );
            }
            Event::Timer { tag: 1 } => {
                if let Some(conn) = self.conn {
                    let msg = S1apMessage::PathSwitchRequest {
                        mme_ue_id: self.target_ue,
                        new_enb_ue_id: EnbUeId(1),
                        new_enb_teid: Teid(0xBEEF),
                    };
                    ctx.send(
                        self.stack,
                        Box::new(SockCmd::StreamSend {
                            handle: conn,
                            bytes: lp_encode(&msg.encode()),
                        }),
                    );
                }
            }
            Event::Msg { payload, .. } => match downcast::<SockEvent>(payload, "target-enb") {
                SockEvent::StreamOpened { handle, .. } => {
                    self.conn = Some(handle);
                    let setup = S1apMessage::S1SetupRequest {
                        enb_id: 99,
                        name: "target-enb".into(),
                    };
                    ctx.send(
                        self.stack,
                        Box::new(SockCmd::StreamSend {
                            handle,
                            bytes: lp_encode(&setup.encode()),
                        }),
                    );
                    let delay = self.switch_at.since(ctx.now());
                    ctx.timer_in(delay, 1);
                }
                SockEvent::StreamRecv { bytes, .. } => {
                    for m in self.framer.push(&bytes) {
                        if let Ok(S1apMessage::PathSwitchAck { mme_ue_id }) =
                            S1apMessage::decode(&m)
                        {
                            let t = ctx.now();
                            ctx.metrics()
                                .record("test.path_switch_ack", t, mme_ue_id.0 as f64);
                        }
                    }
                }
                _ => {}
            },
            _ => {}
        }
    }
}

#[test]
fn path_switch_moves_downlink_tunnel() {
    let site = SiteSpec {
        enbs: 1,
        ues_per_enb: 1,
        attach_rate_per_sec: 1.0,
        traffic: TrafficModel::http_download(),
        ..SiteSpec::typical()
    };
    let cfg = ScenarioConfig::new(3).with_agw(AgwSpec::bare_metal(site));
    let mut sc = magma::deploy(cfg);

    // A second (target) eNodeB node appears at the same site.
    let site_domain = sc.net.domain_of(sc.agws[0].node);
    let target_node = sc.net.add_node(site_domain, "target-enb");
    sc.net
        .connect(target_node, sc.agws[0].node, magma_net::LinkProfile::lan());
    let target_stack = {
        let w: &mut World = &mut sc.world;
        w.add_actor(Box::new(NetStack::new(target_node, sc.net.handle_of(target_node))))
    };
    sc.net.bind_stack(target_node, target_stack);
    sc.world.add_actor(Box::new(TargetEnb {
        stack: target_stack,
        agw: Endpoint::new(sc.agws[0].node, ports::S1AP),
        conn: None,
        framer: LpFramer::new(),
        switch_at: SimTime::from_secs(20),
        target_ue: MmeUeId(1), // the first (and only) attached UE
    }));

    sc.world.run_until(SimTime::from_secs(40));
    let rec = sc.world.metrics();
    assert_eq!(rec.counter("agw0.attach.accept"), 1.0, "UE attached first");
    assert_eq!(rec.counter("agw0.handover"), 1.0, "path switch handled");
    assert_eq!(
        rec.series("test.path_switch_ack").map(|s| s.len()),
        Some(1),
        "target eNB received the ack"
    );

    // The session's downlink TEID now points at the target eNodeB.
    let cp = sc.agws[0]
        .handle
        .borrow()
        .checkpoint
        .clone()
        .expect("checkpointing active");
    let session = cp.sessions.iter().next().expect("one session");
    assert_eq!(session.dl_teid, Teid(0xBEEF), "downlink repointed");
}
