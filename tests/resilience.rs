//! Resilience of the control plane: the orchestrator actor can crash and
//! restart without losing authoritative state (it is durably stored —
//! Postgres in the paper, the shared journaled store here), and gateways
//! reconnect and keep syncing.

use magma::prelude::*;
use magma::testbed::overall_csr;
use magma_orc8r::Orc8rActor;
use magma_net::{ports, NetStack};

#[test]
fn orc8r_crash_and_restart_preserves_state_and_resyncs() {
    let site = SiteSpec {
        enbs: 1,
        ues_per_enb: 40,
        attach_rate_per_sec: 1.0,
        traffic: TrafficModel::http_download(),
        ..SiteSpec::typical()
    };
    let cfg = ScenarioConfig::new(8).with_agw(AgwSpec::bare_metal(site));
    let mut sc = magma::deploy(cfg);

    sc.world.run_until(SimTime::from_secs(15));
    let version_before = sc.orc8r.borrow().db.version;
    let journal_before = sc.orc8r.borrow().journal.len();

    // Orchestrator process dies (its durable store survives: the handle).
    sc.world.crash(sc.orc8r_actor);
    // Its network stack also restarts (full VM replacement).
    sc.world.crash({
        // The stack is the first actor added in build(); recover it from
        // the topology binding instead of relying on construction order.
        sc.net
            .stack_of(sc.orc8r_node)
            .expect("orc8r stack bound")
    });
    sc.world.run_until(SimTime::from_secs(30));

    // Replacement instances attach to the same durable state.
    let stack_actor = sc.net.stack_of(sc.orc8r_node).unwrap();
    sc.world.restart(
        stack_actor,
        Box::new(NetStack::new(sc.orc8r_node, sc.net.handle_of(sc.orc8r_node))),
    );
    sc.world.restart(
        sc.orc8r_actor,
        Box::new(Orc8rActor::new(
            sc.orc8r.clone(),
            stack_actor,
            ports::ORC8R,
        )),
    );

    // Config change after restart must propagate to the AGW.
    sc.orc8r
        .borrow_mut()
        .upsert_policy(magma_policy::PolicyRule::rate_limited("post-restart", 1, 1));
    let new_version = sc.orc8r.borrow().db.version;
    sc.world.run_until(SimTime::from_secs(120));

    // State preserved across the crash.
    assert!(sc.orc8r.borrow().db.version > version_before);
    assert!(sc.orc8r.borrow().journal.len() > journal_before);

    // Attaches were never disturbed (they are AGW-local).
    assert_eq!(overall_csr(sc.world.metrics(), "ran"), 1.0);

    // The AGW resynced to the post-restart config.
    assert!(
        sc.agws[0].handle.borrow().last_db_version >= new_version,
        "agw at v{}, want ≥ v{new_version}",
        sc.agws[0].handle.borrow().last_db_version
    );

    // And the gateway re-registered with the restarted orchestrator.
    let (gws, _, sessions) = sc.orc8r.borrow().fleet_summary();
    assert_eq!(gws, 1);
    assert_eq!(sessions, 40);
}

#[test]
fn metricsd_queues_pushes_across_orc8r_crash_window() {
    // Telemetry keeps flowing after an orchestrator outage: snapshots
    // taken while orc8r is down are queued on the gateway and delivered
    // in order (seq-contiguous) once the replacement comes up.
    let site = SiteSpec {
        enbs: 1,
        ues_per_enb: 10,
        attach_rate_per_sec: 2.0,
        ..SiteSpec::typical()
    };
    let cfg = ScenarioConfig::new(11).with_agw(AgwSpec::bare_metal(site));
    let mut sc = magma::deploy(cfg);

    sc.world.run_until(SimTime::from_secs(20));
    let seq_before = sc
        .orc8r
        .borrow()
        .metrics_store
        .gateway("agw0")
        .map(|g| g.last_seq)
        .unwrap_or(0);
    assert!(seq_before > 0, "pushes landed before the crash");

    sc.world.crash(sc.orc8r_actor);
    sc.world.crash(sc.net.stack_of(sc.orc8r_node).unwrap());
    sc.world.run_until(SimTime::from_secs(50));

    // Nothing lands while the orchestrator is down…
    let seq_during = sc
        .orc8r
        .borrow()
        .metrics_store
        .gateway("agw0")
        .map(|g| g.last_seq)
        .unwrap_or(0);
    assert_eq!(seq_during, seq_before);

    let stack_actor = sc.net.stack_of(sc.orc8r_node).unwrap();
    sc.world.restart(
        stack_actor,
        Box::new(NetStack::new(sc.orc8r_node, sc.net.handle_of(sc.orc8r_node))),
    );
    sc.world.restart(
        sc.orc8r_actor,
        Box::new(Orc8rActor::new(
            sc.orc8r.clone(),
            stack_actor,
            ports::ORC8R,
        )),
    );
    sc.world.run_until(SimTime::from_secs(80));

    // …and after restart the queued outage snapshots drain in order:
    // no sequence gaps, and roughly one push per 5s sampling interval
    // over the whole run (16 intervals by t=80s; slack for startup and
    // reconnect backoff).
    let st = sc.orc8r.borrow();
    let gm = st
        .metrics_store
        .gateway("agw0")
        .expect("gateway telemetry present");
    assert!(
        gm.pushes >= 13,
        "queued snapshots delivered after restart: {} pushes",
        gm.pushes
    );
    assert_eq!(
        gm.last_seq, gm.pushes,
        "in-order, gap-free delivery across the outage"
    );
    assert!(gm.last_seq > seq_before);
}

#[test]
fn agw_restart_without_checkpoint_forces_reattach() {
    // Contrast with the failover ablation: restarting with a FRESH AGW
    // (no checkpoint) drops all sessions; well-behaved UEs re-attach.
    let site = SiteSpec {
        enbs: 1,
        ues_per_enb: 10,
        attach_rate_per_sec: 2.0,
        traffic: TrafficModel::http_download(),
        reattach: true,
        ..SiteSpec::typical()
    };
    let cfg = ScenarioConfig::new(9).with_agw(AgwSpec::bare_metal(site));
    let mut sc = magma::deploy(cfg);
    sc.world.run_until(SimTime::from_secs(20));
    assert_eq!(sc.agws[0].handle.borrow().active_sessions, 10);

    let agw = &sc.agws[0];
    sc.world.crash(agw.actor);
    sc.world.crash(agw.stack);
    sc.world.run_until(SimTime::from_secs(25));
    let agw = &sc.agws[0];
    sc.world
        .restart(agw.stack, Box::new(NetStack::new(agw.node, sc.net.handle_of(agw.node))));
    let mut fresh = magma_agw::AgwActor::new(agw.cfg.clone(), agw.handle.clone());
    fresh.preprovision(sc.orc8r.borrow().db.snapshot());
    fresh.set_up_cores(agw.up_cores);
    sc.world.restart(agw.actor, Box::new(fresh));

    // Sessions are gone immediately after the cold restart…
    sc.world.run_until(SimTime::from_secs(26));
    assert_eq!(sc.agws[0].handle.borrow().active_sessions, 0);

    // …but UEs re-attach once the eNodeB reconnects (crash-recovery via
    // reconnection, §3.4).
    sc.world.run_until(SimTime::from_secs(180));
    assert!(
        sc.agws[0].handle.borrow().active_sessions >= 9,
        "UEs re-attached: {}",
        sc.agws[0].handle.borrow().active_sessions
    );
}
