//! The closed telemetry loop end to end: structured events and metric
//! snapshots ship in-band to the orchestrator, the windowed store feeds
//! the alert engine, and episodes fire/resolve with hysteresis — all
//! observable purely through northbound queries, byte-deterministically.

use magma::orc8r::{AlertRule, Orc8rState, OFFLINE_RULE};
use magma::prelude::*;
use magma::sim::RegistrySnapshot;
use magma::testbed::orc8r_telemetry_json;

/// Synthetic ingest: one CPU gauge sample at `at_s` seconds, evaluated
/// against the configured rules on the gateway's own clock.
fn push_cpu(st: &mut Orc8rState, gw: &str, seq: u64, at_s: u64, cpu: f64) {
    let mut snap = RegistrySnapshot::default();
    snap.gauges.insert("cpu.percent".to_string(), cpu);
    let at = SimTime::from_secs(at_s);
    assert!(st.metrics_store.ingest(gw, seq, at, snap, Vec::new()));
    st.evaluate_alert_rules_on_ingest(gw, at);
}

#[test]
fn short_spike_never_fires() {
    let mut st = Orc8rState::new(0);
    st.alert_rules = vec![AlertRule::cpu_sustained(85.0, SimDuration::from_secs(30))];
    // Two breaching samples spanning 5s — far short of the 30s sustain —
    // then recovery.
    let series = [(95.0), (95.0), (40.0), (40.0), (40.0)];
    for (i, cpu) in series.into_iter().enumerate() {
        push_cpu(&mut st, "agw0", i as u64 + 1, i as u64 * 5, cpu);
    }
    assert!(
        st.alerts_for_rule("cpu_high").is_empty(),
        "a short spike must not open an episode"
    );
}

#[test]
fn sustained_breach_fires_once_per_episode_and_resolves() {
    let mut st = Orc8rState::new(0);
    st.alert_rules = vec![AlertRule::cpu_sustained(85.0, SimDuration::from_secs(30))];

    // Episode 1: breach 0..=40s (sustain satisfied at 30s), recover at 45.
    // Episode 2: breach 60..=100s, recover at 105.
    let mut seq = 0;
    let mut push = |st: &mut Orc8rState, at_s: u64, cpu: f64| {
        seq += 1;
        push_cpu(st, "agw0", seq, at_s, cpu);
    };
    for t in (0..=40).step_by(5) {
        push(&mut st, t, 95.0);
    }
    push(&mut st, 45, 50.0);
    push(&mut st, 50, 50.0);
    for t in (60..=100).step_by(5) {
        push(&mut st, t, 95.0);
    }
    push(&mut st, 105, 50.0);

    let episodes = st.alerts_for_rule("cpu_high");
    assert_eq!(
        episodes.len(),
        2,
        "one alert per sustained episode, not per breaching sample"
    );
    assert_eq!(episodes[0].at, SimTime::from_secs(30), "fires at sustain");
    assert_eq!(episodes[0].resolved_at, Some(SimTime::from_secs(45)));
    assert_eq!(episodes[1].at, SimTime::from_secs(90));
    assert_eq!(episodes[1].resolved_at, Some(SimTime::from_secs(105)));
    assert!(st.firing_alerts().is_empty(), "all episodes closed");
}

#[test]
fn staleness_episode_rearms_after_recovery() {
    // Hysteresis must reset on resolve: a gateway that goes dark,
    // recovers, then goes dark again is two distinct pages, not a
    // suppressed continuation of the first.
    let mut st = Orc8rState::new(0);
    st.alert_rules = vec![AlertRule::push_staleness(3, SimDuration::from_secs(5))];

    // Push at t=5, then silence: the 15 s staleness threshold is crossed
    // by the t=25 sweep — episode 1 opens.
    push_cpu(&mut st, "agw0", 1, 5, 40.0);
    st.evaluate_staleness_rules(SimTime::from_secs(10));
    assert!(st.alerts_for_rule("push_stale").is_empty(), "fresh gateway");
    st.evaluate_staleness_rules(SimTime::from_secs(25));
    assert!(st.has_open_alert("agw0", "push_stale"), "episode 1 open");
    // Staying stale is still one episode.
    st.evaluate_staleness_rules(SimTime::from_secs(30));
    assert_eq!(st.alerts_for_rule("push_stale").len(), 1);

    // Recovery: a fresh push resolves episode 1 on the next sweep.
    push_cpu(&mut st, "agw0", 2, 31, 40.0);
    st.evaluate_staleness_rules(SimTime::from_secs(35));
    assert!(!st.has_open_alert("agw0", "push_stale"), "episode 1 closed");

    // Degrade again: silence past the threshold opens a NEW episode —
    // the engine must have re-armed, not stayed latched on the old one.
    st.evaluate_staleness_rules(SimTime::from_secs(50));
    let episodes = st.alerts_for_rule("push_stale");
    assert_eq!(episodes.len(), 2, "recovered-then-degraded = new episode");
    assert_eq!(episodes[0].resolved_at, Some(SimTime::from_secs(35)));
    assert_eq!(episodes[1].at, SimTime::from_secs(50));
    assert_eq!(episodes[1].resolved_at, None, "episode 2 still firing");
    assert!(st.has_open_alert("agw0", "push_stale"));
}

/// The acceptance scenario: partition an AGW's backhaul, drive a
/// CPU-heavy attach storm through the partition, and observe everything
/// through the orchestrator's northbound queries alone.
fn storm_run(seed: u64) -> (String, Vec<(String, Option<u64>)>, usize, usize) {
    let site = SiteSpec {
        enbs: 1,
        ues_per_enb: 180,
        attach_rate_per_sec: 3.0,
        ..SiteSpec::typical()
    };
    // One shared core: the storm demands ~147% of clean attach capacity,
    // so the MME queue grows, attaches time out with cause=Congestion,
    // and CPU pins near 100% for well over the 30s sustain window.
    let mut spec = AgwSpec::bare_metal(site);
    spec.layout = CoreLayout::Shared { cores: 1 };
    let cfg = ScenarioConfig::new(seed).with_agw(spec).with_alert_rules(vec![
        AlertRule::cpu_sustained(85.0, SimDuration::from_secs(30)),
        AlertRule::push_staleness(3, SimDuration::from_secs(5)),
    ]);
    let mut d = magma::deploy(cfg);

    // Partition the backhaul 20s..70s; the storm runs right through it.
    d.world.run_until(SimTime::from_secs(20));
    let agw0_node = d.agws[0].node;
    d.net.set_link_up(agw0_node, d.orc8r_node, false);
    d.world.run_until(SimTime::from_secs(70));
    d.net.set_link_up(agw0_node, d.orc8r_node, true);
    d.world.run_until(SimTime::from_secs(120));

    let st = d.orc8r.borrow();
    let export = serde_json::to_string(&orc8r_telemetry_json(&st)).unwrap();
    let alerts: Vec<(String, Option<u64>)> = st
        .alerts
        .iter()
        .map(|a| (a.rule.clone(), a.resolved_at.map(|t| t.0)))
        .collect();
    let failures = st.metrics_store.events_of_kind("agw0", "attach_failure");
    let congestion = failures
        .iter()
        .filter(|e| e.fields.get("emm_cause").map(String::as_str) == Some("22"))
        .count();
    (export, alerts, failures.len(), congestion)
}

#[test]
fn partition_storm_is_observable_northbound_and_deterministic() {
    let (export, alerts, failures, congestion) = storm_run(11);

    // The staleness rule fired during the partition and resolved after
    // the queued pushes drained.
    let stale: Vec<_> = alerts.iter().filter(|(r, _)| r == "push_stale").collect();
    assert!(!stale.is_empty(), "staleness alert never fired");
    assert!(
        stale.iter().all(|(_, resolved)| resolved.is_some()),
        "staleness episodes must resolve after the heal"
    );

    // The device-management offline alert (missed check-ins) fired too,
    // independently of the metric rules.
    assert!(
        alerts.iter().any(|(r, _)| r == OFFLINE_RULE),
        "offline alert missing"
    );

    // The CPU storm is one episode: the alert fires exactly once even
    // though dozens of breaching samples arrive (many in a post-heal
    // backlog burst), and resolves once the attach queue drains.
    let cpu: Vec<_> = alerts.iter().filter(|(r, _)| r == "cpu_high").collect();
    assert_eq!(cpu.len(), 1, "cpu episodes: {alerts:?}");
    assert!(cpu[0].1.is_some(), "cpu alert must resolve after the storm");

    // Attach failures surfaced as structured events with NAS cause codes
    // — cause 22 (Congestion) marks the gateway-side timeouts.
    assert!(failures > 20, "only {failures} attach_failure events");
    assert!(congestion > 20, "only {congestion} congestion-cause events");

    // Byte-determinism of the full northbound export.
    let (export2, ..) = storm_run(11);
    assert_eq!(export, export2, "same seed, same exported bytes");
}
