//! magma-trace end to end: causal span trees recorded across the flow
//! graph, critical-path attribution per procedure, and a Perfetto
//! export that is byte-identical across same-seed runs. Mirrors the
//! acceptance criteria in docs/OBSERVABILITY.md § Causal tracing.

use magma::prelude::*;
use magma::testbed::{critical_path_json, perfetto_string, render_critical_path};

fn small_site() -> SiteSpec {
    SiteSpec {
        enbs: 1,
        ues_per_enb: 12,
        attach_rate_per_sec: 2.0,
        ..SiteSpec::typical()
    }
}

/// Deploy, run for a minute, and export the trace snapshot. Testbed
/// worlds enable tracing at build time, so no extra wiring is needed.
fn traced_run(seed: u64) -> (String, magma::sim::TraceSnapshot) {
    let cfg = ScenarioConfig::new(seed).with_agw(AgwSpec::bare_metal(small_site()));
    let mut d = magma::deploy(cfg);
    d.world.run_until(SimTime::from_secs(60));
    let snap = d.world.trace_snapshot();
    (perfetto_string(&snap), snap)
}

#[test]
fn perfetto_export_is_byte_identical_across_same_seed_runs() {
    let (export1, snap) = traced_run(7);
    let (export2, _) = traced_run(7);
    assert_eq!(export1, export2, "same seed must yield identical bytes");

    // The run actually traced something: every UE attach roots a tree,
    // and metricsd pushes root their own.
    assert!(snap.stats.started_total >= 12, "{:?}", snap.stats);
    assert!(snap.stats.finished_total >= 12, "{:?}", snap.stats);
    assert!(snap.stats.spans_total > snap.stats.finished_total);
    assert!(!snap.traces.is_empty(), "retained trees missing");

    // A different seed reshuffles virtual timings, so the export moves.
    let (export3, _) = traced_run(8);
    assert_ne!(export1, export3, "different seed, different trace bytes");
}

#[test]
fn critical_path_names_a_dominant_hop_per_procedure() {
    let (_, snap) = traced_run(7);

    let labels: Vec<&str> = snap.procs.iter().map(|p| p.label.as_str()).collect();
    assert!(labels.contains(&"attach"), "procedures: {labels:?}");
    assert!(labels.contains(&"metricsd_push"), "procedures: {labels:?}");

    for proc in &snap.procs {
        assert!(proc.count > 0, "{}: empty aggregate", proc.label);
        assert!(
            proc.latency_mean_s > 0.0 && proc.latency_mean_s <= proc.latency_max_s,
            "{}: mean {} max {}",
            proc.label,
            proc.latency_mean_s,
            proc.latency_max_s
        );
        // Attribution must name the hop kind that dominates the path,
        // and the per-kind shares must cover (and not exceed) the path.
        let dominant = proc
            .dominant_hop
            .as_deref()
            .unwrap_or_else(|| panic!("{}: no dominant hop", proc.label));
        assert_eq!(proc.hops.first().map(|h| h.kind.as_str()), Some(dominant));
        let share_sum: f64 = proc.hops.iter().map(|h| h.share).sum();
        assert!(
            share_sum > 0.5 && share_sum <= 1.0 + 1e-9,
            "{}: shares sum to {share_sum}",
            proc.label
        );
    }

    // The human-readable report and the JSON agree on the headline.
    let table = render_critical_path(&snap);
    let json = critical_path_json(&snap);
    for proc in &snap.procs {
        assert!(table.contains(&proc.label), "table missing {}", proc.label);
        let entry = &json["procedures"][proc.label.as_str()];
        assert_eq!(
            &entry["dominant_hop"],
            proc.dominant_hop.as_deref().unwrap(),
            "{}: JSON dominant hop drifted",
            proc.label
        );
    }
}

#[test]
fn disabled_world_records_no_traces() {
    let cfg = ScenarioConfig::new(7).with_agw(AgwSpec::bare_metal(small_site()));
    let mut d = magma::deploy(cfg);
    d.world.enable_tracing(false);
    d.world.run_until(SimTime::from_secs(60));

    let snap = d.world.trace_snapshot();
    assert_eq!(snap.stats.started_total, 0, "{:?}", snap.stats);
    assert_eq!(snap.stats.spans_total, 0);
    assert!(snap.procs.is_empty());
    assert!(snap.traces.is_empty());

    // The export degrades to the empty-but-valid document.
    let table = render_critical_path(&snap);
    assert!(table.contains("(no finished traces)"), "{table}");
}
