//! 5G support (§3.1): a gNB terminates NGAP at the AGW's AMF front; the
//! same generic functions (subscriber management, session/policy
//! management, data-plane configuration) serve the session. In this
//! reproduction NGAP shares the S1AP message shapes on the NGAP port —
//! the point of Magma's design being precisely that the generic side is
//! identical.

use magma::prelude::*;
use magma::sim::{HostSpec, World};
use magma_agw::{new_agw_handle, AccessTech, AgwActor, AgwConfig};
use magma_net::{new_net, Endpoint, LinkProfile, NetStack, ports};
use magma_ran::{ue_fleet, EnbConfig, EnodebActor};
use magma_subscriber::SubscriberDb;

#[test]
fn gnb_attach_over_ngap_creates_5g_session() {
    let mut w = World::new(55);
    let net = new_net();
    let (agw_node, gnb_node) = {
        let mut t = net.borrow_mut();
        let a = t.add_node("agw");
        let g = t.add_node("gnb");
        t.connect(g, a, LinkProfile::lan());
        (a, g)
    };
    let agw_stack = w.add_actor(Box::new(NetStack::new(agw_node, net.clone())));
    let gnb_stack = w.add_actor(Box::new(NetStack::new(gnb_node, net.clone())));

    // Subscribers upgraded to 5G (same SIM, union schema).
    let mut db = SubscriberDb::new();
    for i in 1..=3u64 {
        db.upsert(SubscriberProfile::lte(Imsi::new(310, 26, i), 7, i).with_5g());
    }
    let host = w.add_host(HostSpec::uniform("agw", 4, 1.0));
    let handle = new_agw_handle();
    let mut agw = AgwActor::new(AgwConfig::new("agw0", host, agw_stack), handle.clone());
    agw.preprovision(db.snapshot());
    let agw = w.add_actor(Box::new(agw));

    // The "gNB": identical RAN actor pointed at the NGAP port.
    let ues = ue_fleet(7, 1, 3, TrafficModel::http_download());
    let mut cfg = EnbConfig::new(1, gnb_stack, Endpoint::new(agw_node, ports::NGAP), agw);
    cfg.attach_rate_per_sec = 1.0;
    w.add_actor(Box::new(EnodebActor::new(cfg, ues)));

    w.run_until(SimTime::from_secs(30));
    let rec = w.metrics();
    assert_eq!(rec.counter("agw0.attach.accept"), 3.0, "5G attaches accepted");

    // Registrations record under the AMF's span, stage-for-stage
    // comparable with the 4G attach span (docs/OBSERVABILITY.md): the
    // first leg is `ngap`, the generic stages are shared.
    let reg = w.registry();
    let total = reg
        .histogram("agw0.amf.register.total_s")
        .expect("amf.register span recorded");
    assert_eq!(total.count, 3, "every accepted registration finishes its span");
    for stage in ["ngap", "nas_auth", "session_setup", "bearer_install"] {
        let h = reg
            .histogram(&format!("agw0.amf.register.{stage}_s"))
            .unwrap_or_else(|| panic!("missing 5G stage histogram {stage}"));
        assert_eq!(h.count, 3, "stage {stage} marked once per registration");
    }
    // And nothing leaked into the 4G span: this world saw no LTE attach.
    assert!(reg.histogram("agw0.mme.attach.total_s").is_none());

    // Sessions carry the 5G access technology.
    let cp = handle.borrow().checkpoint.clone().unwrap();
    assert_eq!(cp.sessions.len(), 3);
    for s in cp.sessions.iter() {
        assert_eq!(s.tech, AccessTech::Nr5g);
    }

    // Traffic flows through the same data plane.
    let bytes: f64 = rec
        .series("agw0.tp_bytes")
        .map(|s| s.values().sum())
        .unwrap_or(0.0);
    assert!(bytes > 5_000_000.0, "5G user plane active: {bytes}");
}

#[test]
fn lte_only_subscriber_rejected_on_5g() {
    let mut w = World::new(56);
    let net = new_net();
    let (agw_node, gnb_node) = {
        let mut t = net.borrow_mut();
        let a = t.add_node("agw");
        let g = t.add_node("gnb");
        t.connect(g, a, LinkProfile::lan());
        (a, g)
    };
    let agw_stack = w.add_actor(Box::new(NetStack::new(agw_node, net.clone())));
    let gnb_stack = w.add_actor(Box::new(NetStack::new(gnb_node, net.clone())));

    // LTE-only subscription: 5G access must be refused.
    let mut db = SubscriberDb::new();
    db.upsert(SubscriberProfile::lte(Imsi::new(310, 26, 1), 7, 1));
    let host = w.add_host(HostSpec::uniform("agw", 4, 1.0));
    let mut agw = AgwActor::new(AgwConfig::new("agw0", host, agw_stack), new_agw_handle());
    agw.preprovision(db.snapshot());
    let agw = w.add_actor(Box::new(agw));

    let ues = ue_fleet(7, 1, 1, TrafficModel::idle());
    let mut cfg = EnbConfig::new(1, gnb_stack, Endpoint::new(agw_node, ports::NGAP), agw);
    cfg.attach_rate_per_sec = 1.0;
    w.add_actor(Box::new(EnodebActor::new(cfg, ues)));

    w.run_until(SimTime::from_secs(20));
    let rec = w.metrics();
    assert_eq!(rec.counter("agw0.attach.accept"), 0.0);
    assert!(rec.counter("agw0.attach.reject") >= 1.0);
}
