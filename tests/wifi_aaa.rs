//! Carrier WiFi: the AGW's AAA terminates RADIUS from APs, maps the
//! credentials onto the shared subscriber database (union schema), and
//! the session rides the same data plane. Accounting Stop tears the
//! session down.

use magma::prelude::*;
use magma::sim::{HostSpec, World};
use magma_agw::{new_agw_handle, AgwActor, AgwConfig};
use magma_net::{new_net, Endpoint, LinkProfile, NetStack, ports};
use magma_ran::{SectorModel, WifiApActor, WifiApConfig};
use magma_subscriber::SubscriberDb;

struct Rig {
    world: World,
    handle: magma_agw::AgwHandle,
}

fn build(password_ok: bool) -> Rig {
    let mut w = World::new(77);
    let net = new_net();
    let (agw_node, ap_node) = {
        let mut t = net.borrow_mut();
        let a = t.add_node("agw");
        let p = t.add_node("ap");
        t.connect(p, a, LinkProfile::lan());
        (a, p)
    };
    let agw_stack = w.add_actor(Box::new(NetStack::new(agw_node, net.clone())));
    let ap_stack = w.add_actor(Box::new(NetStack::new(ap_node, net.clone())));

    let mut db = SubscriberDb::new();
    db.upsert_rule(magma_policy::PolicyRule::unrestricted("unrestricted"));
    db.upsert(SubscriberProfile::wifi(
        Imsi::new(310, 26, 9001),
        "hotspot-1",
        "right-password",
    ));
    let host = w.add_host(HostSpec::uniform("agw", 4, 1.0));
    let handle = new_agw_handle();
    let mut agw = AgwActor::new(AgwConfig::new("agw0", host, agw_stack), handle.clone());
    agw.preprovision(db.snapshot());
    let agw = w.add_actor(Box::new(agw));

    w.add_actor(Box::new(WifiApActor::new(WifiApConfig {
        name: "hotspot-1-session".to_string(),
        stack: ap_stack,
        agw_aaa: Endpoint::new(agw_node, ports::RADIUS_AUTH),
        agw_actor: agw,
        username: "hotspot-1".to_string(),
        password: if password_ok {
            "right-password".to_string()
        } else {
            "wrong".to_string()
        },
        sector: SectorModel::cbrs_modem(),
        tick: SimDuration::from_millis(100),
        dl_bps: 10_000_000,
        ul_bps: 2_000_000,
        auth_at: SimDuration::from_millis(500),
    })));
    Rig { world: w, handle }
}

#[test]
fn ap_authenticates_and_traffic_flows() {
    let mut rig = build(true);
    rig.world.run_until(SimTime::from_secs(30));
    let rec = rig.world.metrics();
    assert_eq!(rec.counter("agw0.wifi.accept"), 1.0);
    assert_eq!(rig.handle.borrow().active_sessions, 1);
    let bytes: f64 = rec
        .series("agw0.tp_bytes")
        .map(|s| s.values().sum())
        .unwrap_or(0.0);
    // ~12 Mbit/s for ~29 s.
    assert!(bytes > 20_000_000.0, "hotspot traffic backhauled: {bytes}");

    // The session is a WiFi session (no GTP) in the checkpoint.
    let cp = rig.handle.borrow().checkpoint.clone().unwrap();
    assert_eq!(
        cp.sessions.iter().next().unwrap().tech,
        magma_agw::AccessTech::Wifi
    );
}

#[test]
fn wrong_password_rejected() {
    let mut rig = build(false);
    rig.world.run_until(SimTime::from_secs(10));
    let rec = rig.world.metrics();
    assert_eq!(rec.counter("agw0.wifi.accept"), 0.0);
    assert!(rec.counter("agw0.wifi.reject") >= 1.0);
    assert_eq!(rig.handle.borrow().active_sessions, 0);
}

#[test]
fn accounting_stop_tears_down_session() {
    let mut rig = build(true);
    rig.world.run_until(SimTime::from_secs(10));
    assert_eq!(rig.handle.borrow().active_sessions, 1);

    // The captive portal logged the user out: an Accounting Stop arrives
    // at the AGW's AAA. Sent via a one-shot actor through the AP's
    // network stack (actor construction order in build(): 0 = agw stack,
    // 1 = ap stack, 2 = agw, 3 = ap).
    use magma_wire::radius::{acct_status, attr, Attribute, RadiusCode, RadiusPacket};
    struct SendOnce {
        stack: magma::sim::ActorId,
        dst: Endpoint,
        bytes: bytes::Bytes,
    }
    impl magma::sim::Actor for SendOnce {
        fn handle(&mut self, ctx: &mut magma::sim::Ctx<'_>, event: magma::sim::Event) {
            if let magma::sim::Event::Start = event {
                ctx.send(
                    self.stack,
                    Box::new(magma_net::SockCmd::DgramSend {
                        src_port: 20001,
                        dst: self.dst,
                        bytes: self.bytes.clone(),
                    }),
                );
            }
        }
    }
    let stop = RadiusPacket::new(RadiusCode::AccountingRequest, 9)
        .with_attr(Attribute::u32(attr::ACCT_STATUS_TYPE, acct_status::STOP))
        .with_attr(Attribute::string(attr::ACCT_SESSION_ID, "hotspot-1-session"));
    rig.world.add_actor(Box::new(SendOnce {
        stack: magma::sim::ActorId(1),
        dst: Endpoint::new(magma_net::NodeAddr(0), ports::RADIUS_ACCT),
        bytes: stop.encode(),
    }));
    rig.world.run_until(SimTime::from_secs(15));
    assert_eq!(
        rig.handle.borrow().active_sessions,
        0,
        "Accounting Stop removed the session"
    );
}
