//! The observability layer end to end: gateway registries feed spans and
//! instruments, `metricsd` pushes snapshots across the simulated
//! backhaul, the orchestrator store answers fleet queries, and exports
//! are deterministic across same-seed runs.

use magma::prelude::*;
use magma::testbed::{orc8r_metrics_json, ATTACH_STAGES};

fn small_site() -> SiteSpec {
    SiteSpec {
        enbs: 1,
        ues_per_enb: 12,
        attach_rate_per_sec: 2.0,
        ..SiteSpec::typical()
    }
}

#[test]
fn metricsd_pushes_reach_orc8r_and_answer_queries() {
    let cfg = ScenarioConfig::new(21).with_agw(AgwSpec::bare_metal(small_site()));
    let mut d = magma::deploy(cfg);
    d.world.run_until(SimTime::from_secs(60));

    let st = d.orc8r.borrow();
    let gm = st
        .metrics_store
        .gateway("agw0")
        .expect("agw0 pushed telemetry");
    // ~12 sampling intervals of 5s in 60s; allow slack for startup.
    assert!(gm.pushes >= 8, "only {} pushes landed", gm.pushes);
    assert_eq!(gm.last_seq, gm.pushes, "contiguous in-order delivery");

    // CPU gauges were sampled on the gateway and traveled in-band.
    assert!(gm.latest.gauges.contains_key("cpu.percent"));
    let cpus = st.cpu_percent_by_gateway();
    assert_eq!(cpus.len(), 1);
    assert!(cpus[0].1 >= 0.0 && cpus[0].1 <= 100.0);

    // All 12 UEs attached; the counters came through the push path.
    let accepts = gm.latest.counters.get("mme.attach_accept").copied();
    assert_eq!(accepts, Some(12.0));
    assert!(gm.latest.counters.get("sessiond.attach").copied() >= Some(12.0));

    // Every attach stage histogram is populated and quantiles are sane.
    for stage in ATTACH_STAGES {
        let name = format!("mme.attach.{stage}_s");
        let qs = st
            .metrics_store
            .quantiles(&name, &[0.5, 0.95, 0.99])
            .unwrap_or_else(|| panic!("no histogram for {name}"));
        assert!(
            qs[0] > 0.0 && qs[0] <= qs[1] && qs[1] <= qs[2],
            "{name}: p50={} p95={} p99={}",
            qs[0],
            qs[1],
            qs[2]
        );
        let h = st.metrics_store.merged_histogram(&name).unwrap();
        assert_eq!(h.count, 12, "{name} observed once per successful attach");
    }

    // Stage times sum to the total on average (same 12 procedures).
    let mean_of = |stage: &str| {
        st.metrics_store
            .merged_histogram(&format!("mme.attach.{stage}_s"))
            .unwrap()
            .mean()
    };
    let stage_sum: f64 = ["s1ap", "nas_auth", "session_setup", "bearer_install"]
        .iter()
        .map(|s| mean_of(s))
        .sum();
    assert!(
        (stage_sum - mean_of("total")).abs() < 1e-9,
        "stage means {stage_sum} vs total {}",
        mean_of("total")
    );

    // RAN-side registry instruments agree with the gateway's view.
    assert_eq!(d.world.registry().counter("ran.attach_ok"), 12.0);
    assert_eq!(d.world.registry().counter("ran.attach_fail"), 0.0);
}

#[test]
fn same_seed_runs_export_identical_snapshots() {
    let run = |seed: u64| {
        let cfg = ScenarioConfig::new(seed)
            .with_agw(AgwSpec::bare_metal(small_site()))
            .with_agw(AgwSpec::vm(small_site(), CoreLayout::Pinned { cp: 2, up: 2 }));
        let mut d = magma::deploy(cfg);
        d.world.run_until(SimTime::from_secs(45));
        let st = d.orc8r.borrow();
        serde_json::to_string(&orc8r_metrics_json(&st)).unwrap()
    };
    let a = run(7);
    assert_eq!(a, run(7), "same seed, same exported bytes");
    assert_ne!(a, run(8), "different seed perturbs the export");
}

#[test]
fn spans_record_exactly_once_per_accepted_attach() {
    // Spans are success-conditioned: exactly one observation lands in
    // every stage histogram per accepted attach (failed or timed-out
    // procedures drop their span unrecorded).
    let cfg = ScenarioConfig::new(31).with_agw(AgwSpec::bare_metal(small_site()));
    let mut d = magma::deploy(cfg);
    d.world.run_until(SimTime::from_secs(50));

    let st = d.orc8r.borrow();
    let gm = st.metrics_store.gateway("agw0").expect("telemetry landed");
    let accepts = gm
        .latest
        .counters
        .get("mme.attach_accept")
        .copied()
        .unwrap_or(0.0);
    assert!(accepts > 0.0);
    for stage in ATTACH_STAGES {
        let h = st
            .metrics_store
            .merged_histogram(&format!("mme.attach.{stage}_s"))
            .unwrap();
        assert_eq!(h.count as f64, accepts, "stage {stage}");
    }
}
