//! The JSON tree shared by the vendored `serde` / `serde_json` pair.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number: unsigned, signed, or floating point.
///
/// Non-negative integers normalize to the unsigned representation so
/// that `1u64` and `1i64` compare equal, mirroring upstream serde_json.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    pub fn from_u64(v: u64) -> Self {
        Number::U(v)
    }

    pub fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Number::U(v as u64)
        } else {
            Number::I(v)
        }
    }

    /// `None` for NaN / infinities, which JSON cannot represent.
    pub fn from_f64(v: f64) -> Option<Self> {
        v.is_finite().then_some(Number::F(v))
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Number::U(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Number::U(v) => i64::try_from(*v).ok(),
            Number::I(v) => Some(*v),
            Number::F(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Number::U(v) => Some(*v as f64),
            Number::I(v) => Some(*v as f64),
            Number::F(v) => Some(*v),
        }
    }

    pub fn is_f64(&self) -> bool {
        matches!(self, Number::F(_))
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U(v) => write!(f, "{v}"),
            Number::I(v) => write!(f, "{v}"),
            // Keep floats visibly floats: `2.0` rather than `2`, so a
            // reader (and goldens) can tell them from integers.
            Number::F(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_object_mut(&mut self) -> Option<&mut BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object-key or array-index lookup; `None` on kind mismatch.
    pub fn get<I: Index>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }

    /// Compact JSON rendering.
    pub fn render(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => render_string(s, out),
            Value::Array(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render(out);
                }
                out.push(']');
            }
            Value::Object(o) => {
                out.push('{');
                for (i, (k, v)) in o.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render(out);
                }
                out.push('}');
            }
        }
    }

    /// Pretty JSON rendering (two-space indent, serde_json style).
    pub fn render_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Value::Array(a) if !a.is_empty() => {
                out.push_str("[\n");
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    v.render_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(o) if !o.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in o.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    render_string(k, out);
                    out.push_str(": ");
                    v.render_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push('}');
            }
            other => other.render(out),
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.render(&mut s);
        f.write_str(&s)
    }
}

/// Key types usable with [`Value::get`] and `value[...]`.
pub trait Index {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value>;
}

impl Index for &str {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        v.as_object().and_then(|o| o.get(*self))
    }
}

impl Index for String {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        self.as_str().index_into(v)
    }
}

impl Index for &String {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        self.as_str().index_into(v)
    }
}

impl Index for usize {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        v.as_array().and_then(|a| a.get(*self))
    }
}

impl<I: Index> std::ops::Index<I> for Value {
    type Output = Value;

    /// Missing keys and kind mismatches yield `Null`, like serde_json.
    fn index(&self, index: I) -> &Value {
        index.index_into(self).unwrap_or(&NULL)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Number::from_f64(v).map_or(Value::Null, Value::Number)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::from(v as f64)
    }
}

macro_rules! from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(Number::from_u64(v as u64))
            }
        }
    )*};
}
from_uint!(u8, u16, u32, u64, usize);

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(Number::from_i64(v as i64))
            }
        }
    )*};
}
from_int!(i8, i16, i32, i64, isize);

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Array(v)
    }
}

impl From<BTreeMap<String, Value>> for Value {
    fn from(v: BTreeMap<String, Value>) -> Self {
        Value::Object(v)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}
