//! Offline stand-in for `serde`.
//!
//! The build environment has no crates registry, so the workspace vendors
//! a simplified data model: [`Serialize`] converts a value into a JSON
//! [`Value`] tree and [`Deserialize`] reads one back. The only serde
//! consumer in this workspace is `serde_json` (also vendored), so the
//! full serializer/deserializer visitor machinery is unnecessary — both
//! crates share this tree representation. The derive macros in
//! `serde_derive` generate impls of these two traits and understand the
//! `#[serde(rename, rename_all, default)]` attributes the workspace uses.

mod value;

pub use value::{Number, Value};

pub use serde_derive::{Deserialize, Serialize};

/// Deserialization error: a human-readable path + cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize into the JSON tree. Infallible: every serializable type in
/// this workspace has a total JSON representation (non-finite floats
/// become `null`, as in upstream serde_json).
pub trait Serialize {
    fn to_json(&self) -> Value;
}

/// Deserialize from the JSON tree.
pub trait Deserialize: Sized {
    fn from_json(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        T::from_json(v).map(Box::new)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::msg(format!("expected unsigned integer, got {v}")))?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::msg(format!("expected integer, got {v}")))?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Number::from_f64(*self as f64).map_or(Value::Null, Value::Number)
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::msg(format!("expected number, got {v}")))
            }
        }
    )*};
}
ser_float!(f32, f64);

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::msg(format!("expected bool, got {v}")))
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg(format!("expected string, got {v}")))
    }
}

impl Serialize for char {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::msg("expected single-char string"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-char string")),
        }
    }
}

impl Serialize for () {
    fn to_json(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::msg("expected null")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(t) => t.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::msg(format!("expected array, got {v}")))?;
        arr.iter().map(T::from_json).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_json(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_json(v)?;
        <[T; N]>::try_from(items)
            .map_err(|got| Error::msg(format!("expected array of {N}, got {}", got.len())))
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::msg(format!("expected array, got {v}")))?;
        arr.iter().map(T::from_json).collect()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::msg(format!("expected array, got {v}")))?;
        arr.iter().map(T::from_json).collect()
    }
}

/// Render a serialized value as a JSON object key, mirroring upstream
/// serde_json: strings pass through, integers stringify.
fn key_to_string(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        Value::Number(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported JSON map key: {other}"),
    }
}

/// Parse a JSON object key back into the key type: try as a string
/// first, then as a number (for integer-keyed maps like `Imsi`).
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_json(&Value::String(s.to_string())) {
        return Ok(k);
    }
    if let Ok(u) = s.parse::<u64>() {
        if let Ok(k) = K::from_json(&Value::Number(Number::from_u64(u))) {
            return Ok(k);
        }
    }
    if let Ok(i) = s.parse::<i64>() {
        if let Ok(k) = K::from_json(&Value::Number(Number::from_i64(i))) {
            return Ok(k);
        }
    }
    Err(Error::msg(format!("cannot parse map key {s:?}")))
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_json()), v.to_json()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::msg(format!("expected object, got {v}")))?;
        obj.iter()
            .map(|(k, v)| Ok((key_from_string::<K>(k)?, V::from_json(v)?)))
            .collect()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json(&self) -> Value {
                Value::Array(vec![$(self.$n.to_json()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json(v: &Value) -> Result<Self, Error> {
                let arr = v
                    .as_array()
                    .ok_or_else(|| Error::msg(format!("expected tuple array, got {v}")))?;
                let expected = [$($n),+].len();
                if arr.len() != expected {
                    return Err(Error::msg(format!(
                        "expected {expected}-tuple, got {} elements",
                        arr.len()
                    )));
                }
                Ok(($($t::from_json(&arr[$n])?,)+))
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}
