//! Offline stand-in for the `bytes` crate.
//!
//! Covers the subset this workspace uses: cheaply cloneable immutable
//! [`Bytes`] (an `Arc<[u8]>` window), growable [`BytesMut`], and the
//! big-endian [`BufMut`] put-methods wire codecs encode with.

use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Immutable, cheaply cloneable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(data);
        let end = data.len();
        Bytes { data, start: 0, end }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-window sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v);
        let end = data.len();
        Bytes { data, start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// Growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Split off and return the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.data.split_off(at);
        let head = std::mem::replace(&mut self.data, rest);
        BytesMut { data: head }
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source (subset: slices advance in place).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Big-endian write methods.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32(0xDEAD_BEEF);
        b.put_u8(7);
        b.put_u16(0x0102);
        b.put_u64(1);
        b.put_slice(b"xy");
        assert_eq!(b.len(), 4 + 1 + 2 + 8 + 2);
        let frozen = b.freeze();
        assert_eq!(&frozen[..4], &[0xDE, 0xAD, 0xBE, 0xEF]);
        let tail = frozen.slice(15..);
        assert_eq!(&tail[..], b"xy");
        let same = frozen.clone();
        assert_eq!(same, frozen);
    }

    #[test]
    fn split_to_takes_prefix() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"abcdef");
        let head = b.split_to(2);
        assert_eq!(&head[..], b"ab");
        assert_eq!(&b[..], b"cdef");
    }

    #[test]
    fn buf_slice_cursor() {
        let mut s: &[u8] = b"hello";
        assert_eq!(s.remaining(), 5);
        s.advance(2);
        assert_eq!(s.chunk(), b"llo");
        assert!(s.has_remaining());
    }
}
