//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert*` / `prop_assume!`, integer-range and
//! `any::<T>()` strategies, `Just`, `prop_oneof!`, `prop_map`,
//! `collection::vec`, `option::of`, and `[class]{m,n}` string patterns.
//!
//! Cases are generated from a deterministic per-test seed (derived from the
//! test's module path and name), so failures reproduce across runs. There
//! is no shrinking: a failing case panics with the regular assert message.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::rc::Rc;

/// RNG handed to strategies.
pub type TestRng = SmallRng;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// FNV-1a, for deriving stable per-test seeds from test names.
#[doc(hidden)]
pub fn new_case_rng(test_name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    SmallRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// A value generator.
pub trait Strategy {
    type Value;

    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        MapStrategy { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.gen(rng)))
    }
}

/// Type-erased strategy (`prop_oneof!` arms).
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;

    fn gen(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.0.len());
        self.0[i].gen(rng)
    }
}

/// Full-domain generation for `any::<T>()`.
pub trait Arb {
    fn arb(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arb for $t {
            fn arb(rng: &mut TestRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arb for bool {
    fn arb(rng: &mut TestRng) -> Self {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl Arb for f64 {
    fn arb(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

impl<T: Arb + Default + Copy, const N: usize> Arb for [T; N] {
    fn arb(rng: &mut TestRng) -> Self {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::arb(rng);
        }
        out
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arb> Strategy for Any<T> {
    type Value = T;

    fn gen(&self, rng: &mut TestRng) -> T {
        T::arb(rng)
    }
}

pub fn any<T: Arb>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! strategy_for_tuples {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.gen(rng),)+)
            }
        }
    )*};
}
strategy_for_tuples! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// `"[a-z0-9.]{1,30}"`-style string patterns: one character class with a
/// `{min,max}` repetition — the only regex subset the workspace uses.
impl Strategy for &str {
    type Value = String;

    fn gen(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern {self:?}"));
        let len = rng.gen_range(min..=max);
        (0..len)
            .map(|_| chars[rng.gen_range(0..chars.len())])
            .collect()
    }
}

fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let rep = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (min_s, max_s) = rep.split_once(',')?;
    let (min, max) = (min_s.parse().ok()?, max_s.parse().ok()?);
    let mut chars = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            for c in cs[i]..=cs[i + 2] {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(cs[i]);
            i += 1;
        }
    }
    (!chars.is_empty() && min <= max).then_some((chars, min, max))
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Size specification for [`vec()`].
    #[derive(Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        /// Inclusive.
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.elem.gen(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    pub struct OfStrategy<S>(S);

    /// `None` one case in four, like upstream's default bias toward `Some`.
    pub fn of<S: Strategy>(inner: S) -> OfStrategy<S> {
        OfStrategy(inner)
    }

    impl<S: Strategy> Strategy for OfStrategy<S> {
        type Value = Option<S::Value>;

        fn gen(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0..4u32) == 0 {
                None
            } else {
                Some(self.0.gen(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Any, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($parm:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut prop_rng = $crate::new_case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $parm = $crate::Strategy::gen(&($strat), &mut prop_rng);)+
                $body
            }
        }
        $crate::proptest_fns!(($cfg) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the rest of this case (continues with the next one).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_maps(x in 1u64..50, v in crate::collection::vec(any::<u8>(), 0..10), o in crate::option::of(Just(7u32))) {
            prop_assert!((1..50).contains(&x));
            prop_assert!(v.len() < 10);
            if let Some(seven) = o {
                prop_assert_eq!(seven, 7);
            }
        }

        #[test]
        fn oneof_and_strings(tag in prop_oneof![Just(1u8), Just(2u8)], s in "[a-c]{2,5}") {
            prop_assert!(tag == 1 || tag == 2);
            prop_assert!((2..=5).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assume!(tag == 1);
            prop_assert_ne!(tag, 2);
        }
    }

    #[test]
    fn deterministic_per_test_seed() {
        let mut a = crate::new_case_rng("t", 3);
        let mut b = crate::new_case_rng("t", 3);
        assert_eq!(
            crate::Strategy::gen(&(0u64..1000), &mut a),
            crate::Strategy::gen(&(0u64..1000), &mut b)
        );
    }
}
