//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access to a
//! crates registry, so the workspace vendors the small API subset it
//! actually uses: [`rngs::SmallRng`] (an xoshiro256++ generator seeded via
//! SplitMix64), the [`RngCore`] / [`Rng`] / [`SeedableRng`] traits, and
//! integer/float/bool sampling. Streams are deterministic functions of the
//! seed, which is all the simulation engine requires (docs/DETERMINISM.md);
//! no compatibility with upstream `rand` byte streams is claimed.

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly over their full domain (`Rng::gen`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with uniform sampling over a half-open or inclusive interval.
///
/// The blanket [`SampleRange`] impls below are over `T: SampleUniform`, not
/// per concrete range type — that link is what lets `gen_range(0.85..1.15)`
/// resolve `{float}` literals to `f64` via fallback, exactly as upstream.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi - lo) as u64;
                lo + (rng.next_u64() % span) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                (lo as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add((rng.next_u64() % (span + 1)) as i64) as $t
            }
        }
    )*};
}
impl_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                Self::sample_half_open(lo, hi, rng)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(b);
            }
            // All-zero state would be a fixed point; perturb it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&v[..n]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i: u32 = r.gen_range(0..=3);
            assert!(i <= 3);
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
        let p_true = (0..1000).filter(|_| r.gen_bool(0.9)).count();
        assert!(p_true > 800);
        let mut bytes = [0u8; 13];
        r.fill_bytes(&mut bytes);
        assert_ne!(bytes, [0u8; 13]);
    }
}
