//! Offline stand-in for `criterion`.
//!
//! Runs each benchmark closure for a handful of timed iterations and prints
//! one line per benchmark. No warm-up, statistics, or HTML reports — just
//! enough to keep `cargo bench` compiling and producing sanity numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const ITERS: u32 = 25;

/// Benchmark registry / runner.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, None, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.throughput, &mut f);
        self
    }

    pub fn finish(self) {}
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct Bencher {
    iters: u32,
    elapsed: Duration,
}

impl Bencher {
    // Wall-clock is the entire point of a bench harness; the workspace-wide
    // Instant::now ban protects simulation results, not host-side timing.
    #[allow(clippy::disallowed_methods)]
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, f: &mut F) {
    let mut b = Bencher {
        iters: ITERS,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / f64::from(b.iters.max(1));
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!(" ({:.0} elem/s)", n as f64 / per_iter)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!(" ({:.0} B/s)", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!("bench {name}: {:.3} us/iter{rate}", per_iter * 1e6);
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| black_box(2u64) + 2));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(1));
        g.sample_size(10);
        g.bench_function("mul", |b| b.iter(|| black_box(3u64) * 3));
        g.finish();
    }

    criterion_group!(benches, sample);

    #[test]
    fn runs_groups() {
        benches();
    }
}
