//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! traits (JSON-tree based, see vendor/serde) for the shapes this workspace
//! uses: named/tuple/unit structs and enums with unit, newtype, tuple, and
//! struct variants, honoring `#[serde(rename = "...")]`,
//! `#[serde(rename_all = "lowercase")]`, and `#[serde(default)]`.
//!
//! Parsing is a hand-rolled token walk (no syn/quote available offline);
//! generics are not supported and panic with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default, Clone)]
struct SerdeAttrs {
    rename: Option<String>,
    rename_all: Option<String>,
    default: bool,
}

struct Field {
    /// None for tuple fields.
    name: Option<String>,
    ty: String,
    attrs: SerdeAttrs,
}

struct Variant {
    name: String,
    attrs: SerdeAttrs,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

enum Input {
    NamedStruct { name: String, attrs: SerdeAttrs, fields: Vec<Field> },
    TupleStruct { name: String, _attrs: SerdeAttrs, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, attrs: SerdeAttrs, variants: Vec<Variant> },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_input(input: TokenStream) -> Input {
    let mut toks = input.into_iter().peekable();
    let container_attrs = take_attrs(&mut toks);
    skip_visibility(&mut toks);

    let kw = next_ident(&mut toks).expect("struct or enum keyword");
    let name = next_ident(&mut toks).expect("type name");
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic types ({name})");
    }

    match kw.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                Input::NamedStruct { name, attrs: container_attrs, fields }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = parse_tuple_fields(g.stream()).len();
                Input::TupleStruct { name, _attrs: container_attrs, arity }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Input::UnitStruct { name },
            other => panic!("unexpected struct body for {name}: {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream());
                Input::Enum { name, attrs: container_attrs, variants }
            }
            other => panic!("unexpected enum body for {name}: {other:?}"),
        },
        other => panic!("expected struct or enum, found {other}"),
    }
}

type Toks = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Consume leading `#[...]` attributes, extracting `#[serde(...)]` items.
fn take_attrs(toks: &mut Toks) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.next() {
                    parse_attr_group(g.stream(), &mut attrs);
                }
            }
            _ => return attrs,
        }
    }
}

fn parse_attr_group(stream: TokenStream, attrs: &mut SerdeAttrs) {
    let mut it = stream.into_iter();
    match it.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(args)) = it.next() else { return };
    let mut a = args.stream().into_iter().peekable();
    while let Some(tok) = a.next() {
        let TokenTree::Ident(key) = tok else { continue };
        match key.to_string().as_str() {
            "default" => attrs.default = true,
            k @ ("rename" | "rename_all") => {
                // Expect `= "literal"`.
                match (a.next(), a.next()) {
                    (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                        if eq.as_char() == '=' =>
                    {
                        let v = lit.to_string().trim_matches('"').to_string();
                        if k == "rename" {
                            attrs.rename = Some(v);
                        } else {
                            attrs.rename_all = Some(v);
                        }
                    }
                    other => panic!("malformed #[serde({k} = ...)]: {other:?}"),
                }
            }
            other => panic!("unsupported serde attribute `{other}` (vendored serde_derive)"),
        }
    }
}

fn skip_visibility(toks: &mut Toks) {
    if matches!(toks.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        toks.next();
        if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            toks.next();
        }
    }
}

fn next_ident(toks: &mut Toks) -> Option<String> {
    match toks.next() {
        Some(TokenTree::Ident(i)) => Some(i.to_string()),
        _ => None,
    }
}

/// Collect the tokens of one type, up to a top-level `,` (angle-bracket aware).
fn take_type(toks: &mut Toks) -> String {
    let mut depth = 0i32;
    let mut ty = String::new();
    while let Some(tok) = toks.peek() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => break,
                _ => {}
            }
        }
        ty.push_str(&toks.next().unwrap().to_string());
        ty.push(' ');
    }
    // Consume the trailing comma if present.
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        toks.next();
    }
    ty.trim().to_string()
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        if toks.peek().is_none() {
            return fields;
        }
        let attrs = take_attrs(&mut toks);
        skip_visibility(&mut toks);
        let Some(name) = next_ident(&mut toks) else {
            return fields;
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field {name}, found {other:?}"),
        }
        let ty = take_type(&mut toks);
        fields.push(Field { name: Some(name), ty, attrs });
    }
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        if toks.peek().is_none() {
            return fields;
        }
        let attrs = take_attrs(&mut toks);
        skip_visibility(&mut toks);
        let ty = take_type(&mut toks);
        if ty.is_empty() {
            return fields;
        }
        fields.push(Field { name: None, ty, attrs });
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        if toks.peek().is_none() {
            return variants;
        }
        let attrs = take_attrs(&mut toks);
        let Some(name) = next_ident(&mut toks) else {
            return variants;
        };
        let shape = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                VariantShape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = parse_tuple_fields(g.stream()).len();
                toks.next();
                VariantShape::Tuple(arity)
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        let mut depth = 0i32;
        while let Some(tok) = toks.peek() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        toks.next();
                        break;
                    }
                    _ => {}
                }
            }
            toks.next();
        }
        variants.push(Variant { name, attrs, shape });
    }
}

// ------------------------------------------------------------- rendering

fn apply_rename_all(name: &str, rule: &str) -> String {
    match rule {
        "lowercase" => name.to_lowercase(),
        "UPPERCASE" => name.to_uppercase(),
        "snake_case" => {
            let mut out = String::new();
            for (i, c) in name.chars().enumerate() {
                if c.is_uppercase() {
                    if i > 0 {
                        out.push('_');
                    }
                    out.extend(c.to_lowercase());
                } else {
                    out.push(c);
                }
            }
            out
        }
        other => panic!("unsupported rename_all rule {other:?} (vendored serde_derive)"),
    }
}

fn field_key(f: &Field, container: &SerdeAttrs) -> String {
    if let Some(r) = &f.attrs.rename {
        return r.clone();
    }
    let name = f.name.as_deref().expect("named field");
    match &container.rename_all {
        Some(rule) => apply_rename_all(name, rule),
        None => name.to_string(),
    }
}

fn variant_key(v: &Variant, container: &SerdeAttrs) -> String {
    if let Some(r) = &v.attrs.rename {
        return r.clone();
    }
    match &container.rename_all {
        Some(rule) => apply_rename_all(&v.name, rule),
        None => v.name.clone(),
    }
}

fn is_option(ty: &str) -> bool {
    let t = ty.replace(' ', "");
    t.starts_with("Option<")
        || t.starts_with("std::option::Option<")
        || t.starts_with("::std::option::Option<")
        || t.starts_with("core::option::Option<")
}

fn gen_serialize(input: &Input) -> String {
    match input {
        Input::NamedStruct { name, attrs, fields } => {
            let mut body = String::from(
                "let mut m = ::std::collections::BTreeMap::new();\n",
            );
            for f in fields {
                let key = field_key(f, attrs);
                let fname = f.name.as_deref().unwrap();
                body.push_str(&format!(
                    "m.insert({key:?}.to_string(), ::serde::Serialize::to_json(&self.{fname}));\n"
                ));
            }
            body.push_str("::serde::Value::Object(m)");
            impl_serialize(name, &body)
        }
        Input::TupleStruct { name, arity: 1, .. } => {
            impl_serialize(name, "::serde::Serialize::to_json(&self.0)")
        }
        Input::TupleStruct { name, arity, .. } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_json(&self.{i})"))
                .collect();
            impl_serialize(
                name,
                &format!("::serde::Value::Array(vec![{}])", items.join(", ")),
            )
        }
        Input::UnitStruct { name } => impl_serialize(name, "::serde::Value::Null"),
        Input::Enum { name, attrs, variants } => {
            let mut arms = String::new();
            for v in variants {
                let key = variant_key(v, attrs);
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => ::serde::Value::String({key:?}.to_string()),\n"
                        ));
                    }
                    VariantShape::Tuple(1) => {
                        arms.push_str(&format!(
                            "{name}::{vname}(x0) => {{\n\
                             let mut m = ::std::collections::BTreeMap::new();\n\
                             m.insert({key:?}.to_string(), ::serde::Serialize::to_json(x0));\n\
                             ::serde::Value::Object(m)\n}}\n"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_json({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {{\n\
                             let mut m = ::std::collections::BTreeMap::new();\n\
                             m.insert({key:?}.to_string(), ::serde::Value::Array(vec![{}]));\n\
                             ::serde::Value::Object(m)\n}}\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone().unwrap()).collect();
                        let mut inner = String::from(
                            "let mut fm = ::std::collections::BTreeMap::new();\n",
                        );
                        for f in fields {
                            let fkey = field_key(f, &v.attrs);
                            let fname = f.name.as_deref().unwrap();
                            inner.push_str(&format!(
                                "fm.insert({fkey:?}.to_string(), ::serde::Serialize::to_json({fname}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n{inner}\
                             let mut m = ::std::collections::BTreeMap::new();\n\
                             m.insert({key:?}.to_string(), ::serde::Value::Object(fm));\n\
                             ::serde::Value::Object(m)\n}}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            impl_serialize(name, &format!("match self {{\n{arms}}}"))
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_json(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_named_field_reads(
    type_name: &str,
    fields: &[Field],
    container: &SerdeAttrs,
    obj_expr: &str,
) -> String {
    let mut out = String::new();
    for f in fields {
        let key = field_key(f, container);
        let fname = f.name.as_deref().unwrap();
        let missing = if f.attrs.default || container.default {
            "::std::default::Default::default()".to_string()
        } else if is_option(&f.ty) {
            "::std::option::Option::None".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(::serde::Error::msg(\
                 concat!(\"missing field `\", {key:?}, \"` in {type_name}\")))"
            )
        };
        out.push_str(&format!(
            "{fname}: match {obj_expr}.get({key:?}) {{\n\
             ::std::option::Option::Some(x) => ::serde::Deserialize::from_json(x)?,\n\
             ::std::option::Option::None => {missing},\n}},\n"
        ));
    }
    out
}

fn gen_deserialize(input: &Input) -> String {
    match input {
        Input::NamedStruct { name, attrs, fields } => {
            let reads = gen_named_field_reads(name, fields, attrs, "obj");
            let body = format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::Error::msg(\
                 concat!(\"expected object for {name}\")))?;\n\
                 ::std::result::Result::Ok({name} {{\n{reads}}})"
            );
            impl_deserialize(name, &body)
        }
        Input::TupleStruct { name, arity: 1, .. } => impl_deserialize(
            name,
            &format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_json(v)?))"),
        ),
        Input::TupleStruct { name, arity, .. } => {
            let reads: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_json(&arr[{i}])?"))
                .collect();
            let body = format!(
                "let arr = v.as_array().ok_or_else(|| ::serde::Error::msg(\
                 concat!(\"expected array for {name}\")))?;\n\
                 if arr.len() != {arity} {{\n\
                 return ::std::result::Result::Err(::serde::Error::msg(\
                 concat!(\"wrong tuple arity for {name}\")));\n}}\n\
                 ::std::result::Result::Ok({name}({}))",
                reads.join(", ")
            );
            impl_deserialize(name, &body)
        }
        Input::UnitStruct { name } => impl_deserialize(
            name,
            &format!("let _ = v; ::std::result::Result::Ok({name})"),
        ),
        Input::Enum { name, attrs, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let key = variant_key(v, attrs);
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!(
                            "{key:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                        ));
                    }
                    VariantShape::Tuple(1) => {
                        data_arms.push_str(&format!(
                            "{key:?} => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_json(inner)?)),\n"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let reads: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_json(&arr[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "{key:?} => {{\n\
                             let arr = inner.as_array().ok_or_else(|| ::serde::Error::msg(\
                             concat!(\"expected array for {name}::{vname}\")))?;\n\
                             if arr.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::Error::msg(\
                             concat!(\"wrong arity for {name}::{vname}\")));\n}}\n\
                             ::std::result::Result::Ok({name}::{vname}({}))\n}}\n",
                            reads.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let reads = gen_named_field_reads(
                            &format!("{name}::{vname}"),
                            fields,
                            &v.attrs,
                            "fobj",
                        );
                        data_arms.push_str(&format!(
                            "{key:?} => {{\n\
                             let fobj = inner.as_object().ok_or_else(|| ::serde::Error::msg(\
                             concat!(\"expected object for {name}::{vname}\")))?;\n\
                             ::std::result::Result::Ok({name}::{vname} {{\n{reads}}})\n}}\n"
                        ));
                    }
                }
            }
            let body = format!(
                "match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error::msg(\
                 format!(\"unknown {name} variant {{other:?}}\"))),\n}},\n\
                 ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                 let (k, inner) = m.iter().next().unwrap();\n\
                 match k.as_str() {{\n{data_arms}\
                 other => ::std::result::Result::Err(::serde::Error::msg(\
                 format!(\"unknown {name} variant {{other:?}}\"))),\n}}\n}},\n\
                 other => ::std::result::Result::Err(::serde::Error::msg(\
                 format!(\"cannot deserialize {name} from {{other}}\"))),\n}}"
            );
            impl_deserialize(name, &body)
        }
    }
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_json(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}
