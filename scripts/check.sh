#!/usr/bin/env bash
# Tier-1 verification plus lint/doc gates. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "All checks passed."
