#!/usr/bin/env bash
# Tier-1 verification plus lint/doc gates. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> magma-lint (determinism / telemetry / actor hygiene / message-flow graph / shard safety)"
# Capture the report so its summary can be replayed at the very end.
# Fails on any F- or S-rule hit, including drift of the generated
# docs/MESSAGE_FLOW.md (F006) and of docs/SHARD_PLAN.md +
# scripts/golden/shard_plan.json (S005); after an intentional graph
# change, re-baseline with MAGMA_FLOW_ACCEPT=1 and/or
# MAGMA_SHARD_ACCEPT=1 (the lint then regenerates the files — commit
# them).
LINT_OUT="$(mktemp)"
if ! cargo run --release -p magma-lint >"$LINT_OUT" 2>&1; then
    cat "$LINT_OUT"
    rm -f "$LINT_OUT"
    echo "magma-lint found violations (see docs/DETERMINISM.md)" >&2
    exit 1
fi
cat "$LINT_OUT"

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> observability example + golden export diff"
# The example asserts same-seed byte-identity internally; the golden file
# additionally pins the export across commits. On first run (no golden
# committed yet) the export is installed as the golden.
GOLDEN="scripts/golden/observability.json"
EXPORT="$(mktemp)"
trap 'rm -f "$EXPORT" "$LINT_OUT"' EXIT
OBS_EXPORT_PATH="$EXPORT" cargo run --release --example observability >/dev/null
if [[ -f "$GOLDEN" ]]; then
    diff -u "$GOLDEN" "$EXPORT" || {
        echo "observability export drifted from $GOLDEN" >&2
        exit 1
    }
else
    mkdir -p "$(dirname "$GOLDEN")"
    cp "$EXPORT" "$GOLDEN"
    echo "installed new golden export at $GOLDEN"
fi

echo "==> bench-smoke (BENCH schema + virtual-column golden diff)"
# Runs the smallest magma-bench scenario, validates the report schema
# (virtual/host segregation, >=90% vCPU attribution), and byte-diffs the
# virtual section against scripts/golden/bench_smoke_virtual.json
# (installed on first run). Host-side numbers are NOT diffed — they are
# machine-dependent by design; the CI perf gate (magma-bench --gate)
# covers those with a tolerance instead. See docs/PROFILING.md.
BENCH_OUT="$(mktemp -d)"
cargo run --release -p magma-bench -- --smoke --out "$BENCH_OUT"

echo "==> attach-storm Perfetto trace golden diff"
# Every magma-bench run exports a TRACE_<scenario>.json Perfetto file
# (magma-trace span trees, virtual-time only — see docs/OBSERVABILITY.md
# § Causal tracing). The export must be byte-deterministic for the fixed
# bench seed, so the attach-storm trace is pinned as a golden, installed
# on first run like the others. After an intentional tracing change,
# delete the golden and re-run.
TRACE_GOLDEN="scripts/golden/trace_attach_storm.json"
cargo run --release -p magma-bench -- --scenario attach_storm --out "$BENCH_OUT"
if [[ -f "$TRACE_GOLDEN" ]]; then
    diff -u "$TRACE_GOLDEN" "$BENCH_OUT/TRACE_attach_storm.json" || {
        echo "attach-storm trace export drifted from $TRACE_GOLDEN" >&2
        exit 1
    }
    echo "attach-storm trace matches golden"
else
    mkdir -p "$(dirname "$TRACE_GOLDEN")"
    cp "$BENCH_OUT/TRACE_attach_storm.json" "$TRACE_GOLDEN"
    echo "installed new trace golden at $TRACE_GOLDEN"
fi
echo "==> attach-storm shard report golden diff"
# Shardscope renders per-component load, cut-edge slack, and the
# predicted conservative-window speedup for the fixed bench seed into
# docs/SHARD_REPORT.md (see docs/PROFILING.md § Shardscope). The report
# is a pure function of (scenario, seed), so drift means the workload,
# the shard plan, or the window model changed. After an intentional
# change, re-baseline with MAGMA_SHARDSCOPE_ACCEPT=1 and commit the
# regenerated file.
SHARD_REPORT="docs/SHARD_REPORT.md"
cargo run --release -p magma-bench -- --shard-report "$BENCH_OUT/SHARD_REPORT.md" --out "$BENCH_OUT"
if [[ "${MAGMA_SHARDSCOPE_ACCEPT:-0}" == "1" || ! -f "$SHARD_REPORT" ]]; then
    cp "$BENCH_OUT/SHARD_REPORT.md" "$SHARD_REPORT"
    echo "installed shard report at $SHARD_REPORT (commit it)"
else
    diff -u "$SHARD_REPORT" "$BENCH_OUT/SHARD_REPORT.md" || {
        echo "shard report drifted from $SHARD_REPORT (MAGMA_SHARDSCOPE_ACCEPT=1 re-baselines)" >&2
        exit 1
    }
    echo "shard report matches golden"
fi
rm -rf "$BENCH_OUT"

# Replay the lint summary last so the allow/violation counts are the
# final thing on screen.
echo "==> lint summary"
grep -A100 "^magma-lint:" "$LINT_OUT" || true

echo "All checks passed."
