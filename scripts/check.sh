#!/usr/bin/env bash
# Tier-1 verification plus lint/doc gates. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> observability example + golden export diff"
# The example asserts same-seed byte-identity internally; the golden file
# additionally pins the export across commits. On first run (no golden
# committed yet) the export is installed as the golden.
GOLDEN="scripts/golden/observability.json"
EXPORT="$(mktemp)"
trap 'rm -f "$EXPORT"' EXIT
OBS_EXPORT_PATH="$EXPORT" cargo run --release --example observability >/dev/null
if [[ -f "$GOLDEN" ]]; then
    diff -u "$GOLDEN" "$EXPORT" || {
        echo "observability export drifted from $GOLDEN" >&2
        exit 1
    }
else
    mkdir -p "$(dirname "$GOLDEN")"
    cp "$EXPORT" "$GOLDEN"
    echo "installed new golden export at $GOLDEN"
fi

echo "All checks passed."
